"""The live pruning threshold θ: bounded heaps over score lower bounds.

θ is the k-th best *lower bound* on a final score observed so far.  Any
candidate whose score *upper bound* falls below θ (minus a rounding-safety
slack, :func:`safety_slack`) provably cannot enter the top-k, because at
least k other candidates already have final scores of at least θ.

Two access patterns are provided:

* :func:`threshold_of` for recomputing θ from a snapshot of lower bounds
  — the traversal drivers do this once per term pass over the live
  accumulator values (recomputing avoids the duplicate-offer unsoundness
  of pushing a growing partial score twice), and the type-group pruner
  over a subset pool of the highest-base candidates;
* :class:`ThresholdHeap` for streaming offers when each candidate's
  final lower bound is seen exactly once (kept as part of the layer's
  public surface for traversals with that shape).
"""

from __future__ import annotations

import heapq
import math
import threading
from collections.abc import Iterable

#: θ before k lower bounds have been seen: nothing can be pruned yet.
NO_THRESHOLD = float("-inf")


def ceil_div(numerator: int, denominator: int) -> int:
    """``ceil(numerator / denominator)`` in exact integer arithmetic.

    The block/chunk grids (posting blocks, feature-correction chunks)
    all need the number of fixed-size slices covering ``numerator``
    items; the floor-division identity keeps it exact for the int sizes
    float ``math.ceil`` would round.
    """
    return -(-numerator // denominator)


def safety_slack(threshold: float) -> float:
    """Rounding guard subtracted from θ before any bound comparison.

    The pruned traversals associate the same floating-point terms
    differently from the exhaustive reference path, so two mathematically
    equal scores can differ by a few ulps between the paths.  Pruning
    decisions therefore only discard work at least ``slack`` below θ —
    about 1e-9 relative, many orders of magnitude above accumulated
    rounding error and far below any score gap worth pruning.
    """
    return 1e-9 * (1.0 + abs(threshold))


class ThresholdHeap:
    """A bounded min-heap over score lower bounds with a live θ.

    ``offer`` scores as they become known; :attr:`threshold` is the k-th
    best so far, or ``-inf`` until k scores have been offered.  Offers must
    be final lower bounds of *distinct* candidates — offering a growing
    partial score of the same candidate twice would double-count it.
    """

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self._k = k
        self._heap: list[float] = []

    def offer(self, score: float) -> None:
        """Consider one candidate's score lower bound."""
        heap = self._heap
        if len(heap) < self._k:
            heapq.heappush(heap, score)
        elif score > heap[0]:
            heapq.heapreplace(heap, score)

    def offer_many(self, scores: Iterable[float]) -> None:
        for score in scores:
            self.offer(score)

    @property
    def full(self) -> bool:
        """Whether k lower bounds have been seen (θ is live)."""
        return len(self._heap) >= self._k

    @property
    def threshold(self) -> float:
        """The live θ: k-th best lower bound, ``-inf`` while not full."""
        heap = self._heap
        if len(heap) < self._k:
            return NO_THRESHOLD
        return heap[0]

    def __len__(self) -> int:
        return len(self._heap)


class SharedThreshold:
    """The cross-shard θ broadcast of the sharded execution layer.

    The layer runs one traversal per document shard, and a naive
    broadcast of each shard's *own* k-th best lower bound composes badly:
    when true matches are sparse, every shard's k-th best is dominated by
    background-floor candidates and θ never tightens (the serial
    traversal, seeing all candidates at once, prunes almost everything).
    The broadcast is therefore *compositional*: each shard worker keeps a
    slot holding its current top-k score **lower bounds** (distinct
    candidates within the shard; candidates never span shards, so the
    union across slots is a set of distinct candidates too), and the
    global θ is the k-th largest of the union — exactly the θ the serial
    traversal would derive from the merged pool.

    θ is monotone over the query: a published bound stays a true lower
    bound of its candidate's final score even after that candidate is
    evicted elsewhere, so :attr:`value` keeps the running maximum and
    only ever rises.  ``publish`` additionally accepts scalar θ values
    that carry their own k-candidate witness (a primed θ from an exactly
    scored subset pool, the ranking side's type-group initial θ).
    """

    __slots__ = ("_lock", "_k", "_value", "_slots")

    def __init__(self, k: int = 0, initial: float = NO_THRESHOLD) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self._lock = threading.Lock()
        self._k = k
        self._value = initial if initial == initial else NO_THRESHOLD  # NaN-proof
        self._slots: list[list[float]] = []

    @property
    def value(self) -> float:
        """The tightest θ published so far (``-inf`` until one exists)."""
        return self._value

    def publish(self, value: float) -> None:
        """Offer a self-witnessed scalar θ; kept only when tighter."""
        if value > self._value:  # NaN compares false: never published
            with self._lock:
                if value > self._value:
                    self._value = value

    def combine(self, local: float) -> float:
        """Sync a scalar θ with the broadcast: publish if tighter, adopt
        if looser; returns the tighter of the two."""
        published = self._value
        if local > published:
            self.publish(local)
            return local
        return published

    def slot(self) -> "SharedThresholdSlot":
        """Allocate one worker's contribution slot (call once per shard)."""
        with self._lock:
            self._slots.append([])
            return SharedThresholdSlot(self, len(self._slots) - 1)

    def _offer(self, slot_id: int, bounds: list[float]) -> float:
        """Replace one slot's lower bounds; return the refreshed global θ.

        Replacement (rather than accumulation) keeps every candidate
        represented at most once per slot even though workers re-offer
        after every pass with grown partials; the k-th largest over all
        slots is then witnessed by k distinct candidates, hence sound.
        """
        with self._lock:
            self._slots[slot_id] = bounds
            if self._k > 0:
                pool = [bound for slot in self._slots for bound in slot]
                if len(pool) >= self._k:
                    theta = heapq.nlargest(self._k, pool)[-1]
                    if theta > self._value:
                        self._value = theta
            return self._value


class SharedThresholdSlot:
    """One shard worker's handle on a :class:`SharedThreshold`."""

    __slots__ = ("_shared", "_id")

    def __init__(self, shared: SharedThreshold, slot_id: int) -> None:
        self._shared = shared
        self._id = slot_id

    @property
    def value(self) -> float:
        """The current global θ (running maximum; reads are lock-free)."""
        return self._shared.value

    def offer(self, bounds: list[float]) -> float:
        """Publish this shard's current top-k score lower bounds.

        ``bounds`` must be final-score lower bounds of *distinct*
        candidates of this shard (each call replaces the previous offer).
        Returns the refreshed global θ.
        """
        return self._shared._offer(self._id, bounds)


def top_k_bounds(scores: Iterable[float], k: int) -> list[float]:
    """The up-to-``k`` largest finite lower bounds of a snapshot.

    The list-valued sibling of :func:`threshold_of` the cross-shard
    broadcast consumes: shorter-than-``k`` results are still useful there
    (a shard with 3 candidates contributes 3 witnesses to the global
    pool), and NaNs are dropped rather than poisoning the pool — a NaN is
    simply not a usable witness.
    """
    if k <= 0:
        return []
    largest = heapq.nlargest(k, scores)
    if any(map(math.isnan, largest)):
        largest = [bound for bound in largest if not math.isnan(bound)]
    return largest


def threshold_of(scores: Iterable[float], k: int) -> float:
    """θ over a snapshot of lower bounds: the k-th largest, or ``-inf``.

    Used by the traversal drivers to recompute θ from the current
    accumulator values after each term pass (``heapq.nlargest`` runs in
    C and is O(n log k)).

    The result is never NaN: a NaN θ would poison every subsequent bound
    comparison (all comparisons with NaN are false, so pruning would
    silently discard *every* candidate).  NaN handling costs nothing on
    the hot path — ``nlargest`` runs on the raw iterable (which may be a
    one-shot generator) and only the O(k) result is scanned: a NaN in the
    input either never enters the bounded heap (every ``NaN > heap[0]``
    comparison is false, so the k-th largest *comparable* score comes out
    as usual) or ends up in the result, in which case θ degrades to
    ``-inf`` — pruning is disabled for the snapshot, which is sound.
    ``-inf`` is also returned when fewer than ``k`` scores exist, e.g.
    when ``k`` exceeds the surviving candidate pool mid-traversal.
    """
    if k <= 0:
        return NO_THRESHOLD
    largest = heapq.nlargest(k, scores)
    if len(largest) < k:
        return NO_THRESHOLD
    if any(map(math.isnan, largest)):
        return NO_THRESHOLD
    return largest[-1]
