"""Contribution bounds: the contract between scorers and the drivers.

A pruned traversal only needs three things per query term: a sound *upper*
bound on the term's per-document contribution, a sound *floor* (the
background contribution every candidate receives even without matching —
zero for BM25-family scorers, the smoothing floor for language models),
and a callback that applies the exact contribution to an accumulator map.
:class:`DenseTermEntry` / :class:`SparseTermEntry` package those per term;
:class:`ScorerBounds` is the protocol a scorer's bound provider implements
so the bounds can be derived once per (field, term) and memoised on
:class:`~repro.index.statistics.CollectionStatistics` for the index epoch.
"""

from __future__ import annotations

from collections.abc import Callable, MutableMapping, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

#: An accumulator map ``candidate id -> partial score``.
Accumulators = MutableMapping[str, float]


@runtime_checkable
class ScorerBounds(Protocol):
    """Per-(field, term) contribution bounds of one scorer.

    Implementations derive the bounds from cached collection statistics
    (maximum term frequency, minimum/maximum field length, collection
    probabilities) and memoise them per index epoch.  Soundness contract:
    for every candidate document ``d`` the scorer may score,

        ``term_floor(field, term) <= contribution(d) <= term_upper(field, term)``.
    """

    def term_upper(self, field: str, term: str) -> float:
        """Largest contribution the term can make to any candidate."""
        ...

    def term_floor(self, field: str, term: str) -> float:
        """Smallest contribution any candidate receives for the term."""
        ...


@dataclass(frozen=True)
class DenseTermEntry:
    """One query term of a dense (score-every-candidate) traversal.

    ``accumulate(accumulators, cut)`` must return a *new* accumulator map
    holding ``partial + contribution`` for every candidate whose current
    partial is at least ``cut``, dropping the rest (language-model
    smoothing gives every surviving candidate a non-trivial background
    contribution).  Fusing the eviction check into the term pass makes
    pruning nearly free: the pass already touches every candidate, and
    evicted candidates skip the per-field probability arithmetic.  Passing
    ``cut = -inf`` keeps every candidate.
    """

    key: str
    floor: float
    upper: float
    accumulate: Callable[[Accumulators, float], dict[str, float]]

    @property
    def spread(self) -> float:
        """How much the term can separate candidates (drives term order)."""
        return self.upper - self.floor


@dataclass(frozen=True)
class SparseTermEntry:
    """One query term of a sparse (postings-only) traversal.

    ``expand`` walks the term's postings and may create new accumulator
    entries; ``refine`` must only update candidates already present (the
    AND-mode of the max-score OR→AND switch, skipping the postings walk).
    The implied floor is zero: non-matching candidates gain nothing.
    """

    key: str
    upper: float
    expand: Callable[[Accumulators], None]
    refine: Callable[[Accumulators], None]


@dataclass(frozen=True)
class BlockedSparseTermEntry(SparseTermEntry):
    """A sparse term entry carrying block-max range bounds (BMW-style).

    The term's matching documents, sorted by document id, are chunked
    into fixed-size blocks; ``block_lasts[i]`` is the last (largest)
    document id of block ``i`` and ``block_uppers[i]`` a sound upper
    bound on the term's contribution to *any* document inside the block
    — by construction ``block_uppers[i] <= upper`` for every block, which
    is what lets the ``blockmax`` refinement evict survivors the single
    global bound cannot.  ``contribution(doc_id)`` returns the exact
    contribution of one document (``0.0`` for non-matching documents);
    the galloping refinement uses it instead of ``refine`` so a single
    survivor can be probed without walking anything.

    Block summaries are derived from index-time posting statistics and
    memoised per index epoch (see
    :meth:`repro.index.statistics.CollectionStatistics.memoised_blocks`),
    so building an entry costs one cache hit per (scorer, field, term)
    after the first query of an epoch.
    """

    block_lasts: Sequence[str] = ()
    block_uppers: Sequence[float] = ()
    contribution: Callable[[str], float] = lambda doc_id: 0.0
