"""Pruning counters reported by every threshold-pruned traversal.

The counters mirror the ``cache_info()`` convention of the result caches:
a mutable object owned by the scorer / ranker instance, accumulated across
queries and exposed as a plain dict so benchmarks and operators can verify
that pruning actually bites (``terms_skipped``, ``candidates_pruned`` and
``groups_skipped`` must be non-zero on workloads where θ closes the gap to
the bounds).
"""

from __future__ import annotations


class PruningStats:
    """Cumulative skip counters of one pruned scorer or ranker.

    ``queries``            traversals run with pruning enabled;
    ``terms_total``        query terms seen by the pruned traversals;
    ``terms_skipped``      term passes skipped outright (dense driver) or
                           served by accumulator-only refinement instead of
                           a full postings walk (sparse driver);
    ``candidates_total``   candidates entering the traversals;
    ``candidates_pruned``  candidates evicted by a bound check before the
                           traversal finished scoring them;
    ``groups_total``       dominant-type groups seen (recommendation side);
    ``groups_skipped``     whole type groups skipped because
                           ``B(c) + bound(corrections) < θ``;
    ``blocks_total``       posting blocks (search side) or per-type feature
                           chunks (recommendation side) the ``blockmax``
                           refinement considered;
    ``blocks_skipped``     blocks passed over without probing a single
                           posting because no survivor fell in the block's
                           range or the block-max bound fell below θ, and
                           per-type chunks abandoned mid-walk;
    ``rescored``           survivors re-scored exactly for the final
                           ranking (the price of byte-identical output);
    ``kernel_queries``     traversals served by a vectorized columnar
                           kernel rather than the scalar walk (the
                           ``columnar`` knob's observable footprint).
    """

    __slots__ = (
        "queries",
        "terms_total",
        "terms_skipped",
        "candidates_total",
        "candidates_pruned",
        "groups_total",
        "groups_skipped",
        "blocks_total",
        "blocks_skipped",
        "rescored",
        "kernel_queries",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (new counters must be listed in ``__slots__``)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (``cache_info()`` convention)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"PruningStats({inner})"
