"""The backend-agnostic snapshot segment codec.

PR 7 invented an epoch-tagged serialisation format for columnar index
snapshots — a compact JSON manifest followed by the raw array bytes —
but welded it to ``multiprocessing.shared_memory`` inside
``repro.exec.shm``.  This module lifts the codec out: everything about
*bytes* lives here (alignment, header packing, array placement,
checksums, decoding), while the storage backends — the shared-memory
registry in :mod:`repro.exec.shm` and the mmap'd file store in
:mod:`repro.storage.diskstore` — only decide *where* a segment's bytes
live.

Layout of a snapshot segment (format version 2)::

    [0:8)    the 8-byte magic ``PVTESNAP``
    [8:16)   int64  format version
    [16:24)  int64  manifest length in bytes
    [24:32)  int64  arrays base offset (64-byte aligned)
    [32:..)  UTF-8 JSON manifest
    [base:.) the arrays, each 64-byte aligned, offsets relative to base

Version 1 was the PR 7 shared-memory layout (16-byte header, no magic,
no checksums); it never touched disk, so nothing decodes it any more.
Version 2 adds the magic + version preamble and a CRC32 per placed
array: every array descriptor in the manifest is a
``[offset, dtype, shape, crc32]`` quadruple, and
:meth:`SegmentView.verify_checksums` can prove a segment's array bytes
intact before anything scores against them — the disk store does this
eagerly on every attach (a file survives process restarts and can rot;
a shared-memory segment cannot outlive its creator, so the hot
worker-attach path skips the pass).

The decoded read surface is :class:`SegmentView`: zero-copy numpy views
over any buffer (a shared-memory mapping, an ``np.memmap``, plain
``bytes``), presenting the subset of the
:class:`~repro.index.columnar.ColumnarIndex` surface the traversal
kernels consume plus the
:class:`~repro.features.columnar.ColumnarFeatureTables` reconstruction
for feature-table segments.
"""

from __future__ import annotations

import json
import zlib
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..index.postings import BLOCK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..features.columnar import ColumnarFeatureTables
    from ..index.columnar import ColumnarIndex, ColumnarPostings
    from ..index.fielded_index import FieldedIndex
    from ..kg.topology import GraphTopology

#: Array alignment inside a snapshot segment (cache-line friendly).
ALIGN = 64

#: The segment preamble: magic + version + manifest length + arrays base.
MAGIC = b"PVTESNAP"
FORMAT_VERSION = 2
HEADER_BYTES = 32


class SnapshotUnavailable(RuntimeError):
    """The requested snapshot segment is missing, stale or malformed."""


def align(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN` boundary."""
    return (offset + ALIGN - 1) & ~(ALIGN - 1)


class SegmentBuilder:
    """Accumulates manifest array descriptors, then writes one segment.

    ``place`` assigns each array a 64-aligned offset (relative to the
    arrays base, so the manifest can be encoded before the base is
    known) and returns its ``[offset, dtype, shape, crc32]`` descriptor;
    ``write_into`` encodes the header + manifest and copies every placed
    array into a caller-provided buffer (a shared-memory mapping, a
    file-backed mmap, a bytearray).  Shared by every snapshot kind and
    every backend — this is the single home of the alignment / ceil-div
    / header-packing logic the shm publish paths used to copy-paste.
    """

    def __init__(self) -> None:
        self._arrays: list[np.ndarray] = []
        self._cursor = 0

    def place(self, array: np.ndarray) -> list[object]:
        array = np.ascontiguousarray(array)
        offset = align(self._cursor)
        self._cursor = offset + array.nbytes
        self._arrays.append(array)
        crc = zlib.crc32(array.tobytes()) if array.nbytes else 0
        return [offset, array.dtype.str, list(array.shape), crc]

    @staticmethod
    def encode_manifest(manifest: dict[str, object]) -> bytes:
        return json.dumps(manifest, separators=(",", ":")).encode("utf-8")

    def total_size(self, encoded_manifest: bytes) -> tuple[int, int]:
        """``(total segment bytes, arrays base offset)`` for a manifest."""
        arrays_base = align(HEADER_BYTES + len(encoded_manifest))
        total = max(arrays_base + self._cursor, HEADER_BYTES + len(encoded_manifest))
        return total, arrays_base

    def write_into(self, buf, encoded_manifest: bytes) -> int:
        """Write header, manifest and arrays into ``buf``; return total bytes.

        ``buf`` must support the buffer protocol and be at least
        :meth:`total_size` bytes long.
        """
        total, arrays_base = self.total_size(encoded_manifest)
        view = memoryview(buf)
        view[:8] = MAGIC
        header = np.ndarray(3, dtype=np.int64, buffer=view, offset=8)
        header[0] = FORMAT_VERSION
        header[1] = len(encoded_manifest)
        header[2] = arrays_base
        del header
        view[HEADER_BYTES : HEADER_BYTES + len(encoded_manifest)] = encoded_manifest
        cursor = 0
        for array in self._arrays:
            offset = align(cursor)
            cursor = offset + array.nbytes
            if array.nbytes:
                target = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=view,
                    offset=arrays_base + offset,
                )
                target[...] = array
                del target
        del view
        return total


def decode_header(buf, name: str = "snapshot") -> tuple[dict[str, object], int]:
    """Parse a segment's preamble; return ``(manifest, arrays base)``.

    Raises :class:`SnapshotUnavailable` for anything that is not a
    well-formed current-version segment: short buffers, a foreign magic,
    a stale format version, a manifest that overruns the buffer or fails
    to parse.
    """
    view = memoryview(buf)
    if len(view) < HEADER_BYTES:
        raise SnapshotUnavailable(f"snapshot {name!r} is truncated (no header)")
    if bytes(view[:8]) != MAGIC:
        raise SnapshotUnavailable(f"snapshot {name!r} carries a foreign magic")
    header = np.frombuffer(view, dtype=np.int64, count=3, offset=8)
    version, manifest_length, arrays_base = (int(value) for value in header)
    del header
    if version != FORMAT_VERSION:
        raise SnapshotUnavailable(
            f"snapshot {name!r} has format version {version}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    if manifest_length < 0 or HEADER_BYTES + manifest_length > len(view):
        raise SnapshotUnavailable(f"snapshot {name!r} is truncated (manifest overruns)")
    try:
        raw = bytes(view[HEADER_BYTES : HEADER_BYTES + manifest_length])
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotUnavailable(f"snapshot {name!r} manifest is malformed") from error
    if not isinstance(manifest, dict):
        raise SnapshotUnavailable(f"snapshot {name!r} manifest is malformed")
    return manifest, arrays_base


def _is_descriptor(value: object) -> bool:
    return (
        isinstance(value, list)
        and len(value) == 4
        and isinstance(value[0], int)
        and isinstance(value[1], str)
        and isinstance(value[2], list)
        and isinstance(value[3], int)
    )


def iter_descriptors(node: object) -> Iterator[list[object]]:
    """Every array descriptor reachable inside a (decoded) manifest."""
    if _is_descriptor(node):
        yield node  # type: ignore[misc]
        return
    if isinstance(node, dict):
        for value in node.values():
            yield from iter_descriptors(value)
    elif isinstance(node, list):
        for value in node:
            yield from iter_descriptors(value)


class SegmentView:
    """Zero-copy numpy views over one decoded snapshot segment.

    Backend-agnostic: the constructor takes any buffer (shared-memory
    mapping, ``np.memmap``, ``bytes``) plus the uid/epoch the caller
    expects, and presents the subset of the
    :class:`~repro.index.columnar.ColumnarIndex` surface the traversal
    kernels consume — length columns, posting columns (with block grids
    rebuilt locally), dense frequency columns, CRC-derived shard
    ownership — plus the same ``memoised`` hook the scorers use for
    derived contribution columns.  Feature-table segments instead
    rebuild their :class:`~repro.features.columnar.ColumnarFeatureTables`
    via :meth:`feature_tables` over the same zero-copy views.
    """

    def __init__(
        self,
        buf,
        *,
        name: str = "snapshot",
        expected_uid: int | None = None,
        expected_epoch: int | None = None,
        verify: bool = False,
    ) -> None:
        self._buf = buf
        self._name = name
        self._manifest, self._arrays_base = decode_header(buf, name)
        try:
            self.uid = int(self._manifest["uid"])
            self.epoch = int(self._manifest["epoch"])
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotUnavailable(
                f"snapshot {name!r} manifest lacks uid/epoch"
            ) from error
        if (expected_uid is not None and self.uid != expected_uid) or (
            expected_epoch is not None and self.epoch != expected_epoch
        ):
            stale = (self.uid, self.epoch)
            raise SnapshotUnavailable(
                f"snapshot {name!r} carries {stale}, "
                f"expected ({expected_uid}, {expected_epoch})"
            )
        self._derived: dict[tuple[object, ...], object] = {}
        if verify:
            self.verify_checksums()

    @property
    def manifest(self) -> dict[str, object]:
        """The decoded JSON manifest (treat as read-only)."""
        return self._manifest

    @property
    def kind(self) -> str:
        """The segment's payload kind (``"columnar-index"`` by default)."""
        return str(self._manifest.get("kind", "columnar-index"))

    @property
    def num_documents(self) -> int:
        return int(self._manifest["num_documents"])

    @property
    def fields(self) -> list[str]:
        return list(self._manifest["fields"])

    def _view(self, desc: list[object]) -> np.ndarray:
        offset, dtype, shape = desc[0], desc[1], desc[2]
        try:
            array = np.ndarray(
                tuple(shape),
                dtype=np.dtype(dtype),
                buffer=self._buf,
                offset=self._arrays_base + int(offset),
            )
        except (TypeError, ValueError) as error:
            raise SnapshotUnavailable(
                f"snapshot {self._name!r} array overruns the segment"
            ) from error
        array.flags.writeable = False
        return array

    def verify_checksums(self) -> None:
        """CRC-check every placed array against its descriptor.

        Raises :class:`SnapshotUnavailable` on the first mismatch (or on
        an array whose descriptor overruns the buffer — a truncated
        segment).  The disk store runs this eagerly on attach; the
        shared-memory attach path skips it (segments cannot outlive
        their creating process, and the pass would cost a full read of
        the mapping on the hot worker path).
        """
        for desc in iter_descriptors(self._manifest):
            array = self._view(desc)
            actual = zlib.crc32(array.tobytes()) if array.nbytes else 0
            if actual != int(desc[3]):  # type: ignore[index]
                raise SnapshotUnavailable(
                    f"snapshot {self._name!r} failed its checksum "
                    f"(array at offset {desc[0]})"
                )

    # ------------------------------------------------------------------ #
    # Columnar-index surface
    # ------------------------------------------------------------------ #
    def field_lengths(self, field: str) -> np.ndarray:
        return self.memoised(
            ("lengths", field), lambda: self._view(self._manifest["lengths"][field])
        )

    def postings(self, field: str, term: str) -> "ColumnarPostings | None":
        def build() -> "ColumnarPostings | None":
            columns = self._manifest["postings"].get(field, {})
            desc = columns.get(term)
            if desc is None:
                return None
            from ..index.columnar import ColumnarPostings

            return ColumnarPostings(self._view(desc[0]), self._view(desc[1]), BLOCK_SIZE)

        return self.memoised(("postings", field, term), build)

    def iter_posting_columns(self, field: str):
        """Yield ``(term, ordinals, frequencies)`` raw views of one field.

        The restore path's bulk accessor: unlike :meth:`postings` it
        builds no per-term block grids, so replaying a whole snapshot
        into an index touches each column exactly once.
        """
        for term, desc in self._manifest["postings"].get(field, {}).items():
            yield term, self._view(desc[0]), self._view(desc[1])

    def dense_frequencies(self, field: str, term: str) -> np.ndarray:
        def build() -> np.ndarray:
            dense = np.zeros(self.num_documents, dtype=np.float64)
            columnar = self.postings(field, term)
            if columnar is not None:
                dense[columnar.ordinals] = columnar.frequencies
            return dense

        return self.memoised(("dense", field, term), build)

    def manifest_array(self, key: str) -> np.ndarray:
        """Zero-copy view of a top-level manifest array by key (memoised)."""
        return self.memoised(("array", key), lambda: self._view(self._manifest[key]))

    def feature_tables(self) -> "ColumnarFeatureTables":
        """The segment's columnar feature tables, rebuilt zero-copy.

        Only valid on ``"kind": "feature-tables"`` segments; raises
        :class:`SnapshotUnavailable` otherwise so a mixed-up descriptor
        degrades to the fallback path instead of a KeyError deep in a
        worker.
        """
        if self._manifest.get("kind") != "feature-tables":
            raise SnapshotUnavailable("segment does not carry feature tables")

        def build() -> "ColumnarFeatureTables":
            from ..features.columnar import ColumnarFeatureTables

            return ColumnarFeatureTables.from_arrays(
                epoch=self.epoch,
                feature_keys=[tuple(key) for key in self._manifest["features"]],
                holder_offsets=self.manifest_array("holder_offsets"),
                holder_ordinals=self.manifest_array("holder_ordinals"),
                dominant_ords=self.manifest_array("dominant_ords"),
                type_populations=self.manifest_array("type_populations"),
                member_offsets=self.manifest_array("member_offsets"),
                member_type_ords=self.manifest_array("member_type_ords"),
            )

        return self.memoised(("feature-tables",), build)

    def graph_topology(self) -> "GraphTopology":
        """The segment's columnar graph topology, rebuilt zero-copy.

        Only valid on ``"kind": "graph-topology"`` segments; raises
        :class:`SnapshotUnavailable` otherwise, mirroring
        :meth:`feature_tables`.  The string tables (entity ids,
        predicates, type ids) travel in the JSON manifest; every CSR and
        interval array stays a read-only view over the segment buffer.
        """
        if self._manifest.get("kind") != "graph-topology":
            raise SnapshotUnavailable("segment does not carry a graph topology")

        def build() -> "GraphTopology":
            from ..kg.topology import GraphTopology

            return GraphTopology.from_arrays(
                epoch=self.epoch,
                entity_ids=list(self._manifest["entity_ids"]),
                predicates=list(self._manifest["predicates"]),
                type_ids=list(self._manifest["type_ids"]),
                out_offsets=self.manifest_array("out_offsets"),
                out_targets=self.manifest_array("out_targets"),
                out_preds=self.manifest_array("out_preds"),
                in_offsets=self.manifest_array("in_offsets"),
                in_sources=self.manifest_array("in_sources"),
                in_preds=self.manifest_array("in_preds"),
                type_offsets=self.manifest_array("type_offsets"),
                type_members=self.manifest_array("type_members"),
                type_parents=self.manifest_array("type_parents"),
                type_pre=self.manifest_array("type_pre"),
                type_post=self.manifest_array("type_post"),
                pre_order=self.manifest_array("pre_order"),
                subtree_sizes=self.manifest_array("subtree_sizes"),
            )

        return self.memoised(("graph-topology",), build)

    def shard_owners(self, num_shards: int) -> np.ndarray:
        """Per-ordinal shard ownership, identical to ``shard_of`` routing."""

        def build() -> np.ndarray:
            if num_shards <= 1:
                return np.zeros(self.num_documents, dtype=np.int64)
            crcs = self._view(self._manifest["crcs"]).astype(np.int64)
            return crcs % num_shards

        return self.memoised(("owners", num_shards), build)

    def memoised(self, key: tuple[object, ...], compute):
        cached = self._derived.get(key)
        if cached is None and key not in self._derived:
            cached = compute()
            self._derived[key] = cached
        return cached

    def release_views(self) -> None:
        """Drop every cached view so the backing buffer can be released."""
        self._derived = {}
        self._manifest = {}


# --------------------------------------------------------------------- #
# Payload encoders (one per snapshot kind, shared by every backend)
# --------------------------------------------------------------------- #
def encode_index_snapshot(
    index: "FieldedIndex",
    view: "ColumnarIndex",
    *,
    include_doc_ids: bool = False,
) -> tuple[dict[str, object], SegmentBuilder]:
    """Serialise one columnar index epoch into ``(manifest, builder)``.

    Every posting column of the full vocabulary is placed (attachers
    must be able to serve any query against the snapshot), together with
    the per-field length columns and the per-document CRC column from
    which any shard count's ownership map derives.  ``include_doc_ids``
    additionally embeds the document identifiers in ordinal order —
    worker processes never need the strings (they select by ordinal),
    but the durable store does: they are what lets a cold-starting
    process rebuild the full :class:`FieldedIndex` without re-tokenising
    a single document.
    """
    builder = SegmentBuilder()
    place = builder.place

    crcs = np.fromiter(
        (zlib.crc32(doc_id.encode("utf-8")) for doc_id in view.doc_ids),
        dtype=np.uint32,
        count=view.num_documents,
    )
    manifest: dict[str, object] = {
        "uid": index.uid,
        "epoch": index.epoch,
        "num_documents": view.num_documents,
        "fields": list(index.fields),
        "crcs": place(crcs),
        "lengths": {},
        "postings": {},
    }
    if include_doc_ids:
        manifest["doc_ids"] = list(view.doc_ids)
    for field in index.fields:
        manifest["lengths"][field] = place(view.field_lengths(field))
        columns: dict[str, list[object]] = {}
        for term in index.field_index(field).vocabulary():
            columnar = view.postings(field, term)
            if columnar is None:
                continue
            columns[term] = [place(columnar.ordinals), place(columnar.frequencies)]
        manifest["postings"][field] = columns
    return manifest, builder


def encode_feature_tables(
    source,
    tables: "ColumnarFeatureTables",
    *,
    include_entity_ids: bool = False,
) -> tuple[dict[str, object], SegmentBuilder]:
    """Serialise one epoch's columnar feature tables into ``(manifest, builder)``.

    The manifest carries the feature-key triples in ordinal order plus
    the holder CSR, dominant-type ordinals, type populations and the
    entity→type membership CSR.  ``source`` is anything with
    ``uid``/``epoch`` pinning the publishing feature index's uid and the
    *tables'* epoch.  ``include_entity_ids`` additionally embeds the
    entity identifiers in ordinal order (parent-side tables carry them)
    so a cold-starting process can invert the holder CSR back into the
    ``entity → features`` / ``feature → holders`` maps of a
    :class:`~repro.features.feature_index.FeatureIndexSnapshot`.
    """
    builder = SegmentBuilder()
    place = builder.place
    manifest: dict[str, object] = {
        "uid": source.uid,
        "epoch": source.epoch,
        "kind": "feature-tables",
        "num_entities": tables.num_entities,
        "features": sorted(tables.feature_ord, key=tables.feature_ord.__getitem__),
        "holder_offsets": place(tables.holder_offsets),
        "holder_ordinals": place(tables.holder_ordinals),
        "dominant_ords": place(tables.dominant_ords),
        "type_populations": place(tables.type_populations),
        "member_offsets": place(tables.member_offsets),
        "member_type_ords": place(tables.member_type_ords),
    }
    if include_entity_ids:
        if tables.entity_ids is None:
            raise ValueError("entity ids requested but the tables carry none")
        manifest["entity_ids"] = list(tables.entity_ids)
    return manifest, builder


def encode_graph_topology(
    source, topology: "GraphTopology"
) -> tuple[dict[str, object], SegmentBuilder]:
    """Serialise one epoch's columnar graph topology into ``(manifest, builder)``.

    The manifest carries the sorted entity/predicate/type string tables
    plus both CSR adjacency directions (neighbour + parallel
    predicate-ordinal columns), the per-type sorted member-ordinal CSR
    and the pre/post-order interval encoding of the containment forest.
    ``source`` is anything with ``uid``/``epoch`` pinning the publishing
    graph's identity and the topology's epoch.
    """
    builder = SegmentBuilder()
    place = builder.place
    return {
        "uid": source.uid,
        "epoch": source.epoch,
        "kind": "graph-topology",
        "num_entities": topology.num_entities,
        "entity_ids": list(topology.entity_ids),
        "predicates": list(topology.predicates),
        "type_ids": list(topology.type_ids),
        "out_offsets": place(topology.out_offsets),
        "out_targets": place(topology.out_targets),
        "out_preds": place(topology.out_preds),
        "in_offsets": place(topology.in_offsets),
        "in_sources": place(topology.in_sources),
        "in_preds": place(topology.in_preds),
        "type_offsets": place(topology.type_offsets),
        "type_members": place(topology.type_members),
        "type_parents": place(topology.type_parents),
        "type_pre": place(topology.type_pre),
        "type_post": place(topology.type_post),
        "pre_order": place(topology.pre_order),
        "subtree_sizes": place(topology.subtree_sizes),
    }, builder
