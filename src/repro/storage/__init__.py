"""Backend-agnostic snapshot storage: codec, disk store, durable KG tier.

The codec (:mod:`repro.storage.codec`) owns the snapshot segment format
— header, manifest, 64-aligned array blobs, per-array CRC32 — and two
backends put segments somewhere: the shared-memory registry in
:mod:`repro.exec.shm` (worker fan-out within one serving host) and the
mmap'd-file store in :mod:`repro.storage.diskstore` (durable,
epoch-tagged snapshot files many serving processes share).  On top,
:mod:`repro.storage.kgstore` serialises the knowledge graph and wires
the pieces into ``PivotE.save(dir)`` / ``PivotE.load(dir)`` whole-system
round-trips.

``kgstore`` reaches back into the index/feature layers (which
themselves import the exec tier, which imports this package's codec),
so its names are re-exported lazily — import :mod:`repro.storage` never
drags the engine stack in.
"""

from .codec import (
    ALIGN,
    FORMAT_VERSION,
    HEADER_BYTES,
    MAGIC,
    SegmentBuilder,
    SegmentView,
    SnapshotUnavailable,
    encode_feature_tables,
    encode_graph_topology,
    encode_index_snapshot,
    iter_descriptors,
)
from .diskstore import DiskSnapshot, DiskSnapshotStore

_KGSTORE_NAMES = (
    "FEATURE_TABLES_KEY",
    "GRAPH_TOPOLOGY_KEY",
    "SEARCH_INDEX_KEY",
    "LoadedSystem",
    "graph_path",
    "load_graph",
    "load_system",
    "restore_feature_snapshot",
    "restore_fielded_index",
    "restore_graph_topology",
    "save_graph",
    "save_system",
    "system_store",
)

__all__ = [
    "ALIGN",
    "FORMAT_VERSION",
    "HEADER_BYTES",
    "MAGIC",
    "DiskSnapshot",
    "DiskSnapshotStore",
    "SegmentBuilder",
    "SegmentView",
    "SnapshotUnavailable",
    "encode_feature_tables",
    "encode_graph_topology",
    "encode_index_snapshot",
    "iter_descriptors",
    *_KGSTORE_NAMES,
]


def __getattr__(name: str):
    if name in _KGSTORE_NAMES:
        from . import kgstore

        return getattr(kgstore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
