"""The durable KG/document tier: whole-system save/load round-trips.

The disk store (:mod:`repro.storage.diskstore`) persists the *derived*
array state — the columnar postings and feature tables.  This module
adds the substrate those arrays were derived from (the knowledge graph's
triple log, at full fidelity including literal datatype/language tags)
and the orchestration that makes ``PivotE.save(dir)`` /
``PivotE.load(dir)`` a lossless round-trip::

    <dir>/
        pivote.json             system manifest (graph epoch, role keys)
        graph.jsonl             one triple per line, replay-ordered
        store/                  the DiskSnapshotStore (see diskstore.py)
            MANIFEST.json
            search-index/<epoch>.snap
            feature-tables/<epoch>.snap
            graph-topology/<epoch>.snap

Cold start then *attaches instead of rebuilding*: the graph replays its
append-only triple log (epoch invariant: one bump per unique triple, so
the restored graph lands on exactly the saved epoch), the fielded index
replays stored per-document term counts straight into posting lists
(:meth:`FieldedIndex.add_document_counts` — no document building, no
tokenisation), and the feature index adopts a snapshot inverted from the
stored holder CSR (no per-entity feature extraction).  Every component
cross-checks the graph epoch recorded at publish time; a failed or
corrupt component raises :class:`SnapshotUnavailable` and the caller
falls back to rebuilding *that component* from the loaded graph — a
corrupt graph file fails the whole load (there is nothing to rebuild
from).
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from dataclasses import dataclass
from types import SimpleNamespace
from typing import TYPE_CHECKING

import numpy as np

from .codec import (
    SegmentView,
    SnapshotUnavailable,
    encode_feature_tables,
    encode_graph_topology,
    encode_index_snapshot,
)
from .diskstore import DiskSnapshotStore, _atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..features.feature_index import FeatureIndexSnapshot, SemanticFeatureIndex
    from ..index.fielded_index import FieldedIndex
    from ..kg import KnowledgeGraph
    from ..kg.topology import GraphTopology

#: Stable role keys inside the snapshot store.  Index uids are
#: process-local counters and mean nothing across restarts, so durable
#: segments are addressed by role; the uid/epoch embedded in each
#: segment still pins which build produced it.
SEARCH_INDEX_KEY = "search-index"
FEATURE_TABLES_KEY = "feature-tables"
GRAPH_TOPOLOGY_KEY = "graph-topology"

_SYSTEM_MANIFEST = "pivote.json"
_GRAPH_FILE = "graph.jsonl"
_STORE_DIR = "store"
_SYSTEM_FORMAT = 1


# --------------------------------------------------------------------- #
# Graph serialisation (full fidelity, replay-ordered)
# --------------------------------------------------------------------- #
def _triple_to_record(triple) -> dict[str, object]:
    record: dict[str, object] = {"s": triple.subject, "p": triple.predicate}
    if triple.is_literal:
        literal = triple.object
        record["v"] = literal.value
        if literal.datatype != "string":
            record["d"] = literal.datatype
        if literal.language:
            record["l"] = literal.language
    else:
        record["o"] = triple.object
    return record


def _record_to_triple(record: dict[str, object]):
    from ..kg import Literal, Triple

    subject = record["s"]
    predicate = record["p"]
    if "o" in record:
        return Triple(subject, predicate, record["o"])  # type: ignore[arg-type]
    return Triple(
        subject,  # type: ignore[arg-type]
        predicate,  # type: ignore[arg-type]
        Literal(
            value=record["v"],  # type: ignore[arg-type]
            datatype=str(record.get("d", "string")),
            language=str(record.get("l", "")),
        ),
    )


def save_graph(path: str, graph: "KnowledgeGraph") -> None:
    """Write the graph's triple log as JSONL (atomic temp-then-rename).

    Unlike the interchange formats in :mod:`repro.kg.io` this is
    lossless: literal datatype and language tags survive, and the
    replay order is the mutation order, so loading reproduces the exact
    epoch sequence.
    """
    with graph.lock:
        lines = [
            json.dumps(_triple_to_record(triple), separators=(",", ":"))
            for triple in graph.triples
        ]
    payload = ("\n".join(lines) + "\n") if lines else ""
    _atomic_write_bytes(path, payload.encode("utf-8"))


def load_graph(path: str, name: str = "kg") -> "KnowledgeGraph":
    """Replay a :func:`save_graph` file into a fresh graph."""
    from ..kg import KnowledgeGraph

    graph = KnowledgeGraph(name=name)
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line.strip() for line in handle.read().splitlines()]
    except OSError as error:
        raise SnapshotUnavailable(f"graph file {path!r} is unreadable") from error
    try:
        # One batched decode of the whole log — much faster than a
        # json.loads per line on cold start; the per-line loop below
        # only runs to attribute a line number to a malformed record.
        records = json.loads("[%s]" % ",".join(line for line in lines if line))
        triples = [_record_to_triple(record) for record in records]
    except Exception as batch_error:
        for number, line in enumerate(lines, start=1):
            if not line:
                continue
            try:
                _record_to_triple(json.loads(line))
            except Exception as error:
                raise SnapshotUnavailable(
                    f"graph file {path!r} line {number} is malformed"
                ) from error
        raise SnapshotUnavailable(f"graph file {path!r} is malformed") from batch_error
    graph.add_all(triples)
    return graph


# --------------------------------------------------------------------- #
# System save
# --------------------------------------------------------------------- #
def system_store(directory: str) -> DiskSnapshotStore:
    """The snapshot store rooted inside a system directory (``<dir>/store``)."""
    return DiskSnapshotStore(os.path.join(directory, _STORE_DIR))


def graph_path(directory: str) -> str:
    """The triple-log file inside a system directory (``<dir>/graph.jsonl``)."""
    return os.path.join(directory, _GRAPH_FILE)


def save_system(
    directory: str,
    graph: "KnowledgeGraph",
    index: "FieldedIndex",
    feature_index: "SemanticFeatureIndex",
    *,
    store: DiskSnapshotStore | None = None,
) -> dict[str, object]:
    """Persist one whole system (graph + both derived tiers) under ``directory``.

    Each snapshot entry records the graph epoch it was derived from;
    loads cross-check it so a graph file and a snapshot from different
    saves never silently combine.  Returns the written system manifest.
    Callers interested in publish counters pass their own ``store``
    (see :func:`system_store`) and read them back off it.
    """
    from ..features.columnar import columnar_tables
    from ..index.columnar import columnar_view
    from ..kg.topology import graph_topology

    os.makedirs(directory, exist_ok=True)
    if store is None:
        store = system_store(directory)

    with graph.lock:
        graph_epoch = graph.epoch
        num_triples = len(graph)
        save_graph(os.path.join(directory, _GRAPH_FILE), graph)

        view = columnar_view(index)
        manifest, builder = encode_index_snapshot(index, view, include_doc_ids=True)
        store.publish(
            SEARCH_INDEX_KEY, manifest, builder, extra={"graph_epoch": graph_epoch}
        )

        snapshot = feature_index.snapshot()
        tables = columnar_tables(snapshot)
        source = SimpleNamespace(uid=feature_index.uid, epoch=snapshot.epoch)
        manifest, builder = encode_feature_tables(
            source, tables, include_entity_ids=True
        )
        store.publish(
            FEATURE_TABLES_KEY, manifest, builder, extra={"graph_epoch": graph_epoch}
        )

        # The columnar topology takes the remaining O(triples) replay term
        # out of cold start: loads install it straight into the graph's
        # memo instead of re-walking the adjacency.  Durable segments are
        # addressed by role, so the uid slot is unused (0) here.
        topology = graph_topology(graph)
        source = SimpleNamespace(uid=0, epoch=graph_epoch)
        manifest, builder = encode_graph_topology(source, topology)
        store.publish(
            GRAPH_TOPOLOGY_KEY, manifest, builder, extra={"graph_epoch": graph_epoch}
        )

    system_manifest: dict[str, object] = {
        "format": _SYSTEM_FORMAT,
        "graph": {
            "file": _GRAPH_FILE,
            "name": graph.name,
            "epoch": graph_epoch,
            "triples": num_triples,
        },
        "store": _STORE_DIR,
        "keys": [SEARCH_INDEX_KEY, FEATURE_TABLES_KEY, GRAPH_TOPOLOGY_KEY],
    }
    _atomic_write_bytes(
        os.path.join(directory, _SYSTEM_MANIFEST),
        json.dumps(system_manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return system_manifest


# --------------------------------------------------------------------- #
# System load
# --------------------------------------------------------------------- #
def _read_system_manifest(directory: str) -> dict[str, object]:
    path = os.path.join(directory, _SYSTEM_MANIFEST)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotUnavailable(
            f"no loadable system under {directory!r}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("format") != _SYSTEM_FORMAT:
        raise SnapshotUnavailable(f"system manifest under {directory!r} is malformed")
    return manifest


def restore_fielded_index(
    view: SegmentView, fields: tuple[str, ...], shards: int = 1
) -> "FieldedIndex":
    """Rebuild a live :class:`FieldedIndex` from one index snapshot.

    The snapshot's posting columns are already in ordinal (sorted
    doc-id) order, so each becomes a :class:`PostingList` directly —
    no per-document insert replay — and the per-ordinal length columns
    become the per-field document lengths.  The result is structurally
    identical to replaying every document through
    ``add_document_counts`` in ordinal order: same sorted posting
    lists, same lengths, same epoch (one bump per document).  The
    configured field schema must match the stored one — a mismatch
    means the snapshot cannot serve this configuration and the caller
    rebuilds instead.
    """
    from ..index.fielded_index import FieldedIndex
    from ..index.postings import PostingList
    from ..index.sharded import ShardedFieldedIndex

    if tuple(view.fields) != tuple(fields):
        raise SnapshotUnavailable(
            f"snapshot indexes fields {tuple(view.fields)!r}, "
            f"configuration wants {tuple(fields)!r}"
        )
    doc_ids = view.manifest.get("doc_ids")
    if not isinstance(doc_ids, list) or len(doc_ids) != view.num_documents:
        raise SnapshotUnavailable("snapshot carries no document identifiers")

    doc_ids = [str(doc_id) for doc_id in doc_ids]
    field_postings: dict[str, dict[str, PostingList]] = {}
    field_lengths: dict[str, dict[str, int]] = {}
    try:
        for field in fields:
            postings: dict[str, PostingList] = {}
            for term, ordinals, frequencies in view.iter_posting_columns(field):
                ids = [doc_ids[ordinal] for ordinal in ordinals.tolist()]
                postings[term] = PostingList(
                    ids, dict(zip(ids, map(int, frequencies.tolist())))
                )
            field_postings[field] = postings
            lengths = view.field_lengths(field)
            if lengths.shape[0] != len(doc_ids):
                raise SnapshotUnavailable("snapshot length column is malformed")
            field_lengths[field] = dict(zip(doc_ids, map(int, lengths.tolist())))
    except IndexError as error:
        raise SnapshotUnavailable("snapshot posting column is malformed") from error

    index = (
        ShardedFieldedIndex(fields, shards) if shards > 1 else FieldedIndex(fields)
    )
    index.adopt_snapshot(doc_ids, field_postings, field_lengths)
    return index


def restore_feature_snapshot(
    graph: "KnowledgeGraph", view: SegmentView
) -> "FeatureIndexSnapshot":
    """Invert one feature-tables snapshot back into pinned snapshot maps.

    The stored holder CSR maps feature ordinals to sorted holder
    ordinals; with the entity-id table alongside, both directions of the
    :class:`FeatureIndexSnapshot` are rebuilt without extracting a single
    feature from the graph.  Entities that hold no features still get
    their (empty) entry — the entity-id table *is* the ordinal universe,
    and dropping empty rows would shift every ordinal after them.
    """
    from ..features.feature_index import FeatureIndexSnapshot
    from ..features.semantic_feature import Direction, SemanticFeature

    if view.epoch != graph.epoch:
        raise SnapshotUnavailable(
            f"feature snapshot is for graph epoch {view.epoch}, "
            f"loaded graph is at {graph.epoch}"
        )
    entity_ids = view.manifest.get("entity_ids")
    if not isinstance(entity_ids, list):
        raise SnapshotUnavailable("feature snapshot carries no entity identifiers")
    keys = view.manifest.get("features")
    if not isinstance(keys, list):
        raise SnapshotUnavailable("feature snapshot carries no feature keys")

    try:
        features = [
            SemanticFeature(anchor, predicate, Direction(direction))
            for anchor, predicate, direction in keys
        ]
    except (TypeError, ValueError) as error:
        raise SnapshotUnavailable("feature snapshot keys are malformed") from error

    holder_offsets = view.manifest_array("holder_offsets")
    holder_ordinals = view.manifest_array("holder_ordinals")
    held: dict[int, set[SemanticFeature]] = defaultdict(set)
    feature_entities: dict[SemanticFeature, frozenset[str]] = {}
    try:
        for position, feature in enumerate(features):
            start = int(holder_offsets[position])
            end = int(holder_offsets[position + 1])
            holders = holder_ordinals[start:end].tolist()
            feature_entities[feature] = frozenset(
                entity_ids[ordinal] for ordinal in holders
            )
            for ordinal in holders:
                held[ordinal].add(feature)
    except IndexError as error:
        raise SnapshotUnavailable("feature snapshot CSR is malformed") from error

    entity_features = {
        entity_id: frozenset(held.get(ordinal, ()))
        for ordinal, entity_id in enumerate(entity_ids)
    }
    return FeatureIndexSnapshot(
        graph,
        entity_features,
        feature_entities,
        epoch=view.epoch,
        triples=len(graph),
    )


def restore_graph_topology(graph: "KnowledgeGraph", view: SegmentView) -> "GraphTopology":
    """Rebuild a :class:`~repro.kg.topology.GraphTopology` from one segment.

    Unlike the worker-side zero-copy attach, every array is *copied* out
    of the (CRC-verified) view: the caller closes the backing memmap
    right after the restore, and the topology outlives it as the graph's
    per-epoch memo.  The epoch cross-check mirrors
    :func:`restore_feature_snapshot` — a topology from another graph
    state must not be installed.
    """
    from ..kg.topology import GraphTopology

    if view.epoch != graph.epoch:
        raise SnapshotUnavailable(
            f"topology snapshot is for graph epoch {view.epoch}, "
            f"loaded graph is at {graph.epoch}"
        )
    manifest = view.manifest
    strings: dict[str, list[str]] = {}
    for key in ("entity_ids", "predicates", "type_ids"):
        values = manifest.get(key)
        if not isinstance(values, list):
            raise SnapshotUnavailable(f"topology snapshot carries no {key}")
        strings[key] = [str(value) for value in values]

    def copied(key: str) -> np.ndarray:
        try:
            return np.array(view.manifest_array(key))
        except KeyError as error:
            raise SnapshotUnavailable(
                f"topology snapshot lacks the {key!r} array"
            ) from error

    topology = GraphTopology.from_arrays(
        epoch=view.epoch,
        entity_ids=strings["entity_ids"],
        predicates=strings["predicates"],
        type_ids=strings["type_ids"],
        out_offsets=copied("out_offsets"),
        out_targets=copied("out_targets"),
        out_preds=copied("out_preds"),
        in_offsets=copied("in_offsets"),
        in_sources=copied("in_sources"),
        in_preds=copied("in_preds"),
        type_offsets=copied("type_offsets"),
        type_members=copied("type_members"),
        type_parents=copied("type_parents"),
        type_pre=copied("type_pre"),
        type_post=copied("type_post"),
        pre_order=copied("pre_order"),
        subtree_sizes=copied("subtree_sizes"),
    )
    if (
        topology.out_offsets.shape != (topology.num_entities + 1,)
        or topology.in_offsets.shape != (topology.num_entities + 1,)
        or topology.type_offsets.shape != (len(topology.type_ids) + 1,)
    ):
        raise SnapshotUnavailable("topology snapshot CSR offsets are malformed")
    return topology


@dataclass
class LoadedSystem:
    """What :func:`load_system` recovered from disk.

    ``index`` / ``feature_snapshot`` / ``topology`` are ``None`` when
    that component's snapshot was missing or corrupt — the graph always
    loads (or the whole call raises), so callers rebuild just the
    missing piece (the topology lazily, on first traversal).
    """

    graph: "KnowledgeGraph"
    index: "FieldedIndex | None"
    feature_snapshot: "FeatureIndexSnapshot | None"
    topology: "GraphTopology | None"
    store: DiskSnapshotStore


def load_system(
    directory: str,
    *,
    fields: tuple[str, ...],
    search_shards: int = 1,
) -> LoadedSystem:
    """Load a saved system, attaching snapshots instead of rebuilding.

    The graph is mandatory: a missing or corrupt graph file raises
    :class:`SnapshotUnavailable` (callers fall back to whatever built
    the graph originally).  The derived tiers are best-effort — each is
    CRC-verified and cross-checked against the loaded graph's epoch, and
    arrives as ``None`` on any failure so the caller rebuilds it from
    the (sound) graph.
    """
    manifest = _read_system_manifest(directory)
    graph_info = manifest.get("graph")
    if not isinstance(graph_info, dict):
        raise SnapshotUnavailable(f"system manifest under {directory!r} is malformed")

    graph = load_graph(
        os.path.join(directory, str(graph_info.get("file", _GRAPH_FILE))),
        name=str(graph_info.get("name", "kg")),
    )
    expected_epoch = int(graph_info.get("epoch", -1))  # type: ignore[arg-type]
    expected_triples = int(graph_info.get("triples", -1))  # type: ignore[arg-type]
    if graph.epoch != expected_epoch or len(graph) != expected_triples:
        raise SnapshotUnavailable(
            f"graph replayed to epoch {graph.epoch} ({len(graph)} triples), "
            f"manifest recorded epoch {expected_epoch} ({expected_triples})"
        )

    store = DiskSnapshotStore(os.path.join(directory, str(manifest.get("store", _STORE_DIR))))

    def attach_component(key: str):
        """Attach + graph-epoch-check one role; raise on any problem.

        ``store.attach`` counts its own failures; the pre-attach entry
        and graph-epoch checks count theirs here, so each failed
        component load bumps ``store.failures`` exactly once.
        """
        try:
            entry = store.entry(key)
            if int(entry.get("graph_epoch", -1)) != graph.epoch:  # type: ignore[arg-type]
                raise SnapshotUnavailable(
                    f"snapshot {key!r} is from another graph epoch"
                )
        except SnapshotUnavailable:
            store.failures += 1
            raise
        return store.attach(key)

    index = None
    try:
        view = attach_component(SEARCH_INDEX_KEY)
    except SnapshotUnavailable:
        pass
    else:
        try:
            index = restore_fielded_index(view, fields, shards=search_shards)
        except SnapshotUnavailable:
            store.failures += 1
        finally:
            view.close()

    feature_snapshot = None
    try:
        view = attach_component(FEATURE_TABLES_KEY)
    except SnapshotUnavailable:
        pass
    else:
        try:
            feature_snapshot = restore_feature_snapshot(graph, view)
        except SnapshotUnavailable:
            store.failures += 1
        finally:
            view.close()

    topology = None
    try:
        view = attach_component(GRAPH_TOPOLOGY_KEY)
    except SnapshotUnavailable:
        pass
    else:
        try:
            topology = restore_graph_topology(graph, view)
        except SnapshotUnavailable:
            store.failures += 1
        finally:
            view.close()

    return LoadedSystem(
        graph=graph,
        index=index,
        feature_snapshot=feature_snapshot,
        topology=topology,
        store=store,
    )


__all__ = [
    "FEATURE_TABLES_KEY",
    "GRAPH_TOPOLOGY_KEY",
    "SEARCH_INDEX_KEY",
    "LoadedSystem",
    "graph_path",
    "load_graph",
    "load_system",
    "restore_feature_snapshot",
    "restore_fielded_index",
    "restore_graph_topology",
    "save_graph",
    "save_system",
    "system_store",
]
