"""The mmap'd-file snapshot store: durable, epoch-tagged segments.

Same codec as the shared-memory tier, different home for the bytes: a
snapshot directory holds one subdirectory per *role key* (stable
strings like ``"search-index"`` — index uids are process-local counters
and mean nothing across restarts), each containing epoch-tagged segment
files::

    <root>/
        MANIFEST.json           atomic pointer: key -> current entry
        search-index/
            42.snap             one codec segment (header+manifest+arrays)
        feature-tables/
            17.snap

Every write is temp-then-rename, so readers never observe a torn file:
a segment file appears fully written or not at all, and the
``MANIFEST.json`` pointer flips atomically to the new epoch.  Stale
epochs of a key are garbage-collected after the pointer flip — the same
replace-then-release discipline the shm registry applies, with the
uid/epoch embedded in each segment cross-checked against the manifest
entry on attach.

Attaching maps the file read-only (``np.memmap``) and decodes it with
eager CRC verification — unlike a shared-memory segment, a file
survives process restarts and can rot on disk, so the whole segment is
checksummed before anything scores against it (one sequential CRC32
recorded in the manifest entry at publish; manifest entries without it
fall back to the codec's per-array descriptor CRCs).  The resulting
:class:`DiskSnapshot` is the codec's :class:`SegmentView`: the same
zero-copy ``ColumnarIndex`` / ``ColumnarFeatureTables`` reconstruction
surface the process workers use, now backed by the page cache.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from .codec import SegmentBuilder, SegmentView, SnapshotUnavailable

_MANIFEST_NAME = "MANIFEST.json"
_SNAP_SUFFIX = ".snap"


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + rename."""
    directory = os.path.dirname(path) or "."
    temp = os.path.join(directory, f".{os.path.basename(path)}.tmp.{os.getpid()}")
    with open(temp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class DiskSnapshot(SegmentView):
    """A read-only ``np.memmap`` over one on-disk snapshot segment.

    Decoded with eager checksum verification; ``close()`` drops the
    cached views and the mapping (idempotent).
    """

    def __init__(
        self,
        path: str,
        *,
        expected_uid: int | None = None,
        expected_epoch: int | None = None,
        expected_crc: int | None = None,
    ) -> None:
        try:
            self._mmap = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as error:
            raise SnapshotUnavailable(f"snapshot file {path!r} is gone") from error
        self.path = path
        try:
            # A whole-file CRC from the manifest entry verifies the
            # segment in one sequential pass; without it (older store
            # manifests) fall back to the per-array descriptor CRCs.
            if expected_crc is not None:
                actual = zlib.crc32(memoryview(self._mmap))
                if actual != int(expected_crc):
                    raise SnapshotUnavailable(
                        f"snapshot file {path!r} failed its whole-file checksum"
                    )
            super().__init__(
                self._mmap,
                name=os.path.basename(path),
                expected_uid=expected_uid,
                expected_epoch=expected_epoch,
                verify=expected_crc is None,
            )
        except BaseException:
            self._mmap = None
            raise

    def close(self) -> None:
        self.release_views()
        self._mmap = None


class DiskSnapshotStore:
    """Durable snapshot files under one directory, keyed by role string.

    ``publish`` writes a new epoch's segment and flips the manifest
    pointer; ``attach`` maps and verifies the current epoch of a key.
    Counters mirror the shm registry's so :class:`~repro.stats.StorageStats`
    can report both backends uniformly.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.publishes = 0
        self.published_bytes = 0
        self.attaches = 0
        self.attached_bytes = 0
        self.failures = 0

    # ------------------------------------------------------------------ #
    # Manifest pointer
    # ------------------------------------------------------------------ #
    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST_NAME)

    def read_manifest(self) -> dict[str, dict[str, object]]:
        """The current key→entry pointer map (empty when absent)."""
        try:
            with open(self._manifest_path(), encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as error:
            raise SnapshotUnavailable(
                f"store manifest under {self.root!r} is unreadable"
            ) from error
        if not isinstance(manifest, dict):
            raise SnapshotUnavailable(f"store manifest under {self.root!r} is malformed")
        return manifest

    def entry(self, key: str) -> dict[str, object]:
        entry = self.read_manifest().get(key)
        if not isinstance(entry, dict):
            raise SnapshotUnavailable(f"store has no snapshot for key {key!r}")
        return entry

    # ------------------------------------------------------------------ #
    # Publish
    # ------------------------------------------------------------------ #
    def publish(
        self,
        key: str,
        manifest: dict[str, object],
        builder: SegmentBuilder,
        *,
        extra: dict[str, object] | None = None,
    ) -> dict[str, object]:
        """Write one encoded segment as ``<root>/<key>/<epoch>.snap``.

        Flips the store manifest's pointer for ``key`` atomically, then
        garbage-collects that key's stale epoch files.  ``extra`` rides
        along in the manifest entry (e.g. the graph epoch the segment
        was derived from) and is cross-checked by callers at load time.
        Returns the new manifest entry.
        """
        uid = int(manifest["uid"])  # type: ignore[arg-type]
        epoch = int(manifest["epoch"])  # type: ignore[arg-type]
        key_dir = os.path.join(self.root, key)
        os.makedirs(key_dir, exist_ok=True)

        encoded = SegmentBuilder.encode_manifest(manifest)
        total, _ = builder.total_size(encoded)
        payload = bytearray(total)
        builder.write_into(payload, encoded)

        filename = f"{epoch}{_SNAP_SUFFIX}"
        segment = bytes(payload)
        _atomic_write_bytes(os.path.join(key_dir, filename), segment)

        entry: dict[str, object] = {
            "uid": uid,
            "epoch": epoch,
            "file": f"{key}/{filename}",
            "nbytes": total,
            "crc": zlib.crc32(segment),
        }
        if extra:
            entry.update(extra)
        store_manifest = self.read_manifest()
        store_manifest[key] = entry
        _atomic_write_bytes(
            self._manifest_path(),
            json.dumps(store_manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
        self.publishes += 1
        self.published_bytes += total
        self._collect_stale(key_dir, keep=filename)
        return entry

    def _collect_stale(self, key_dir: str, keep: str) -> None:
        """Remove every other epoch file (and leftover temps) of a key."""
        try:
            names = os.listdir(key_dir)
        except OSError:  # pragma: no cover - directory raced away
            return
        for name in names:
            if name == keep:
                continue
            if name.endswith(_SNAP_SUFFIX) or name.startswith("."):
                try:
                    os.remove(os.path.join(key_dir, name))
                except OSError:  # pragma: no cover - concurrent GC
                    pass

    # ------------------------------------------------------------------ #
    # Attach
    # ------------------------------------------------------------------ #
    def attach(self, key: str) -> DiskSnapshot:
        """Map + verify the current epoch of ``key`` (checksums eager).

        The uid/epoch recorded in the manifest entry must match the pair
        embedded in the segment itself — a swapped or half-replaced file
        raises :class:`SnapshotUnavailable` instead of serving garbage.
        """
        try:
            entry = self.entry(key)
            path = os.path.join(self.root, str(entry["file"]))
            crc = entry.get("crc")
            snapshot = DiskSnapshot(
                path,
                expected_uid=int(entry["uid"]),  # type: ignore[arg-type]
                expected_epoch=int(entry["epoch"]),  # type: ignore[arg-type]
                expected_crc=None if crc is None else int(crc),  # type: ignore[arg-type]
            )
        except SnapshotUnavailable:
            self.failures += 1
            raise
        self.attaches += 1
        self.attached_bytes += int(entry.get("nbytes", 0))  # type: ignore[arg-type]
        return snapshot
