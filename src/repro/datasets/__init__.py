"""Deterministic synthetic knowledge graphs and evaluation workloads."""

from .academic import (
    AcademicKGConfig,
    build_academic_kg,
    small_academic_kg,
)
from .geography import build_geography_kg
from .movies import (
    CURATED_TOM_HANKS_FILMS,
    MovieKGConfig,
    build_movie_kg,
    small_movie_kg,
)
from .random_kg import RandomKGConfig, build_random_kg, scaling_series
from .workloads import (
    ExpansionTask,
    SearchTask,
    expansion_tasks_from_features,
    search_tasks_from_labels,
    seed_count_sweep,
    tom_hanks_task,
)

__all__ = [
    "AcademicKGConfig",
    "CURATED_TOM_HANKS_FILMS",
    "ExpansionTask",
    "MovieKGConfig",
    "RandomKGConfig",
    "SearchTask",
    "build_academic_kg",
    "build_geography_kg",
    "build_movie_kg",
    "build_random_kg",
    "expansion_tasks_from_features",
    "scaling_series",
    "search_tasks_from_labels",
    "seed_count_sweep",
    "small_academic_kg",
    "small_movie_kg",
    "tom_hanks_task",
]
