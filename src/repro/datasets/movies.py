"""Synthetic movie-domain knowledge graph (the paper's running example).

The paper demonstrates PivotE on DBpedia with the Forrest Gump / Tom Hanks
neighbourhood.  This module builds a deterministic DBpedia-like movie KG
with two layers:

* a **hand-curated core** reproducing the entities the paper names
  (Forrest Gump, Apollo 13, Tom Hanks, Gary Sinise, Robert Zemeckis, ...)
  with exactly the relationships the demo scenarios rely on; and
* a **procedurally generated extension** (films, actors, directors,
  composers, studios, genres, countries) whose size is controlled by a
  scale parameter, so that the latency experiments can grow the graph while
  the quality experiments keep the recognisable core.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..kg import GraphBuilder, KnowledgeGraph

# --------------------------------------------------------------------------- #
# Ontology
# --------------------------------------------------------------------------- #
TYPE_FILM = "dbo:Film"
TYPE_ACTOR = "dbo:Actor"
TYPE_DIRECTOR = "dbo:Director"
TYPE_COMPOSER = "dbo:MusicComposer"
TYPE_STUDIO = "dbo:Company"
TYPE_GENRE = "dbo:Genre"
TYPE_COUNTRY = "dbo:Country"
TYPE_AWARD = "dbo:Award"

REL_STARRING = "dbo:starring"
REL_DIRECTOR = "dbo:director"
REL_MUSIC = "dbo:musicComposer"
REL_STUDIO = "dbo:studio"
REL_GENRE = "dbo:genre"
REL_COUNTRY = "dbo:country"
REL_AWARD = "dbo:award"
REL_SPOUSE = "dbo:spouse"
REL_BIRTH_PLACE = "dbo:birthPlace"

ATTR_RUNTIME = "dbo:runtime"
ATTR_BUDGET = "dbo:budget"
ATTR_RELEASE = "dbo:releaseDate"
ATTR_BIRTH_YEAR = "dbo:birthYear"

_FIRST_NAMES = [
    "James", "Mary", "Robert", "Linda", "Michael", "Susan", "David", "Karen",
    "Richard", "Nancy", "Joseph", "Betty", "Thomas", "Helen", "Charles",
    "Sandra", "Daniel", "Donna", "Matthew", "Carol", "Anthony", "Ruth",
    "Mark", "Sharon", "Paul", "Michelle", "Steven", "Laura", "Andrew",
    "Sarah", "Kenneth", "Kimberly", "George", "Deborah", "Brian", "Jessica",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin", "Lee",
    "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark", "Ramirez",
    "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
]
_FILM_ADJECTIVES = [
    "Silent", "Golden", "Broken", "Hidden", "Lost", "Eternal", "Midnight",
    "Crimson", "Distant", "Burning", "Frozen", "Secret", "Savage", "Gentle",
    "Electric", "Silver", "Falling", "Rising", "Wandering", "Forgotten",
]
_FILM_NOUNS = [
    "Horizon", "River", "Empire", "Promise", "Garden", "Station", "Harvest",
    "Voyage", "Letter", "Symphony", "Shadow", "Kingdom", "Journey", "Echo",
    "Harbor", "Mountain", "Crossing", "Memory", "Tide", "Lantern",
]
_GENRES = [
    "Drama", "Comedy", "Thriller", "Romance", "Science_Fiction", "War",
    "Adventure", "Biography", "Crime", "Fantasy", "Western", "Mystery",
]
_COUNTRIES = [
    "United_States", "United_Kingdom", "France", "Germany", "Italy", "Japan",
    "Canada", "Australia", "Spain", "South_Korea",
]
_STUDIOS = [
    "Paramount_Pictures", "Universal_Pictures", "Warner_Bros", "Columbia_Pictures",
    "20th_Century_Studios", "Metro_Goldwyn_Mayer", "DreamWorks_Pictures",
    "Lionsgate_Films",
]
_CITIES = [
    "Los_Angeles", "New_York_City", "London", "Paris", "Chicago", "Boston",
    "San_Francisco", "Toronto", "Sydney", "Berlin",
]


@dataclass(frozen=True)
class MovieKGConfig:
    """Size and randomness knobs of the synthetic movie KG."""

    #: Number of procedurally generated films in addition to the curated core.
    num_films: int = 120
    #: Number of procedurally generated actors.
    num_actors: int = 80
    #: Number of procedurally generated directors.
    num_directors: int = 20
    #: Number of procedurally generated composers.
    num_composers: int = 12
    #: Actors per generated film (min, max).
    actors_per_film: tuple[int, int] = (2, 5)
    #: Random seed for deterministic generation.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_films < 0 or self.num_actors <= 0 or self.num_directors <= 0:
            raise ValueError("counts must be positive")
        low, high = self.actors_per_film
        if low <= 0 or high < low:
            raise ValueError("actors_per_film must be a valid (min, max) range")


# --------------------------------------------------------------------------- #
# Curated core: the paper's running example
# --------------------------------------------------------------------------- #
def _add_curated_core(builder: GraphBuilder) -> None:
    """Add the entities the paper names, with the edges the demo uses."""
    builder.entity(
        "dbr:Forrest_Gump",
        label="Forrest Gump",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1994_films", "dbc:Films_about_Vietnam_War"],
        attributes={ATTR_RUNTIME: "142 minutes", ATTR_BUDGET: "55 million dollars", ATTR_RELEASE: "1994"},
        aliases=["dbr:Greenbow", "dbr:Gumpian"],
    )
    builder.entity(
        "dbr:Apollo_13_(film)",
        label="Apollo 13",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1995_films", "dbc:Films_about_astronauts"],
        attributes={ATTR_RUNTIME: "140 minutes", ATTR_BUDGET: "52 million dollars", ATTR_RELEASE: "1995"},
    )
    builder.entity(
        "dbr:Cast_Away",
        label="Cast Away",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:2000_films", "dbc:Survival_films"],
        attributes={ATTR_RUNTIME: "143 minutes", ATTR_RELEASE: "2000"},
    )
    builder.entity(
        "dbr:The_Green_Mile_(film)",
        label="The Green Mile",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1999_films", "dbc:Prison_films"],
        attributes={ATTR_RUNTIME: "189 minutes", ATTR_RELEASE: "1999"},
    )
    builder.entity(
        "dbr:Saving_Private_Ryan",
        label="Saving Private Ryan",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1998_films", "dbc:War_films"],
        attributes={ATTR_RUNTIME: "169 minutes", ATTR_RELEASE: "1998"},
    )
    builder.entity(
        "dbr:Philadelphia_(film)",
        label="Philadelphia",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1993_films", "dbc:Legal_films"],
        attributes={ATTR_RUNTIME: "126 minutes", ATTR_RELEASE: "1993"},
    )
    builder.entity(
        "dbr:Back_to_the_Future",
        label="Back to the Future",
        types=[TYPE_FILM],
        categories=["dbc:American_films", "dbc:1985_films", "dbc:Time_travel_films"],
        attributes={ATTR_RUNTIME: "116 minutes", ATTR_RELEASE: "1985"},
    )

    builder.entity(
        "dbr:Tom_Hanks",
        label="Tom Hanks",
        types=[TYPE_ACTOR],
        categories=["dbc:American_male_actors", "dbc:Best_Actor_Academy_Award_winners"],
        attributes={ATTR_BIRTH_YEAR: "1956"},
    )
    builder.entity(
        "dbr:Gary_Sinise",
        label="Gary Sinise",
        types=[TYPE_ACTOR],
        categories=["dbc:American_male_actors"],
        attributes={ATTR_BIRTH_YEAR: "1955"},
    )
    builder.entity(
        "dbr:Robin_Wright",
        label="Robin Wright",
        types=[TYPE_ACTOR],
        categories=["dbc:American_actresses"],
        attributes={ATTR_BIRTH_YEAR: "1966"},
    )
    builder.entity(
        "dbr:Kevin_Bacon",
        label="Kevin Bacon",
        types=[TYPE_ACTOR],
        categories=["dbc:American_male_actors"],
        attributes={ATTR_BIRTH_YEAR: "1958"},
    )
    builder.entity(
        "dbr:Bill_Paxton",
        label="Bill Paxton",
        types=[TYPE_ACTOR],
        categories=["dbc:American_male_actors"],
        attributes={ATTR_BIRTH_YEAR: "1955"},
    )
    builder.entity(
        "dbr:Michael_J_Fox",
        label="Michael J. Fox",
        types=[TYPE_ACTOR],
        categories=["dbc:Canadian_male_actors"],
        attributes={ATTR_BIRTH_YEAR: "1961"},
    )
    builder.entity(
        "dbr:Denzel_Washington",
        label="Denzel Washington",
        types=[TYPE_ACTOR],
        categories=["dbc:American_male_actors", "dbc:Best_Actor_Academy_Award_winners"],
        attributes={ATTR_BIRTH_YEAR: "1954"},
    )

    builder.entity(
        "dbr:Robert_Zemeckis",
        label="Robert Zemeckis",
        types=[TYPE_DIRECTOR],
        categories=["dbc:American_film_directors", "dbc:Best_Director_Academy_Award_winners"],
        attributes={ATTR_BIRTH_YEAR: "1952"},
    )
    builder.entity(
        "dbr:Ron_Howard",
        label="Ron Howard",
        types=[TYPE_DIRECTOR],
        categories=["dbc:American_film_directors"],
        attributes={ATTR_BIRTH_YEAR: "1954"},
    )
    builder.entity(
        "dbr:Steven_Spielberg",
        label="Steven Spielberg",
        types=[TYPE_DIRECTOR],
        categories=["dbc:American_film_directors", "dbc:Best_Director_Academy_Award_winners"],
        attributes={ATTR_BIRTH_YEAR: "1946"},
    )
    builder.entity(
        "dbr:Frank_Darabont",
        label="Frank Darabont",
        types=[TYPE_DIRECTOR],
        categories=["dbc:American_film_directors"],
        attributes={ATTR_BIRTH_YEAR: "1959"},
    )
    builder.entity(
        "dbr:Alan_Silvestri",
        label="Alan Silvestri",
        types=[TYPE_COMPOSER],
        categories=["dbc:American_film_score_composers"],
        attributes={ATTR_BIRTH_YEAR: "1950"},
    )
    builder.entity(
        "dbr:Academy_Award_for_Best_Picture",
        label="Academy Award for Best Picture",
        types=[TYPE_AWARD],
        categories=["dbc:Academy_Awards"],
    )
    builder.entity("dbr:Paramount_Pictures", label="Paramount Pictures", types=[TYPE_STUDIO])
    builder.entity("dbr:Universal_Pictures", label="Universal Pictures", types=[TYPE_STUDIO])
    builder.entity("dbr:Drama", label="Drama", types=[TYPE_GENRE])
    builder.entity("dbr:War", label="War", types=[TYPE_GENRE])
    builder.entity("dbr:Science_Fiction", label="Science Fiction", types=[TYPE_GENRE])
    builder.entity("dbr:United_States", label="United States", types=[TYPE_COUNTRY])

    # Forrest Gump neighbourhood (Fig 1-a).
    builder.edges("dbr:Forrest_Gump", REL_STARRING, ["dbr:Tom_Hanks", "dbr:Gary_Sinise", "dbr:Robin_Wright"])
    builder.edge("dbr:Forrest_Gump", REL_DIRECTOR, "dbr:Robert_Zemeckis")
    builder.edge("dbr:Forrest_Gump", REL_MUSIC, "dbr:Alan_Silvestri")
    builder.edge("dbr:Forrest_Gump", REL_STUDIO, "dbr:Paramount_Pictures")
    builder.edge("dbr:Forrest_Gump", REL_GENRE, "dbr:Drama")
    builder.edge("dbr:Forrest_Gump", REL_COUNTRY, "dbr:United_States")
    builder.edge("dbr:Forrest_Gump", REL_AWARD, "dbr:Academy_Award_for_Best_Picture")

    # Apollo 13: shares Tom Hanks and Gary Sinise (the paper's explanation example).
    builder.edges("dbr:Apollo_13_(film)", REL_STARRING, ["dbr:Tom_Hanks", "dbr:Gary_Sinise", "dbr:Kevin_Bacon", "dbr:Bill_Paxton"])
    builder.edge("dbr:Apollo_13_(film)", REL_DIRECTOR, "dbr:Ron_Howard")
    builder.edge("dbr:Apollo_13_(film)", REL_STUDIO, "dbr:Universal_Pictures")
    builder.edge("dbr:Apollo_13_(film)", REL_GENRE, "dbr:Drama")
    builder.edge("dbr:Apollo_13_(film)", REL_COUNTRY, "dbr:United_States")

    builder.edge("dbr:Cast_Away", REL_STARRING, "dbr:Tom_Hanks")
    builder.edge("dbr:Cast_Away", REL_DIRECTOR, "dbr:Robert_Zemeckis")
    builder.edge("dbr:Cast_Away", REL_MUSIC, "dbr:Alan_Silvestri")
    builder.edge("dbr:Cast_Away", REL_GENRE, "dbr:Drama")
    builder.edge("dbr:Cast_Away", REL_COUNTRY, "dbr:United_States")

    builder.edge("dbr:The_Green_Mile_(film)", REL_STARRING, "dbr:Tom_Hanks")
    builder.edge("dbr:The_Green_Mile_(film)", REL_DIRECTOR, "dbr:Frank_Darabont")
    builder.edge("dbr:The_Green_Mile_(film)", REL_GENRE, "dbr:Drama")
    builder.edge("dbr:The_Green_Mile_(film)", REL_COUNTRY, "dbr:United_States")

    builder.edges("dbr:Saving_Private_Ryan", REL_STARRING, ["dbr:Tom_Hanks"])
    builder.edge("dbr:Saving_Private_Ryan", REL_DIRECTOR, "dbr:Steven_Spielberg")
    builder.edge("dbr:Saving_Private_Ryan", REL_GENRE, "dbr:War")
    builder.edge("dbr:Saving_Private_Ryan", REL_COUNTRY, "dbr:United_States")

    builder.edges("dbr:Philadelphia_(film)", REL_STARRING, ["dbr:Tom_Hanks", "dbr:Denzel_Washington"])
    builder.edge("dbr:Philadelphia_(film)", REL_GENRE, "dbr:Drama")
    builder.edge("dbr:Philadelphia_(film)", REL_COUNTRY, "dbr:United_States")

    builder.edge("dbr:Back_to_the_Future", REL_STARRING, "dbr:Michael_J_Fox")
    builder.edge("dbr:Back_to_the_Future", REL_DIRECTOR, "dbr:Robert_Zemeckis")
    builder.edge("dbr:Back_to_the_Future", REL_MUSIC, "dbr:Alan_Silvestri")
    builder.edge("dbr:Back_to_the_Future", REL_GENRE, "dbr:Science_Fiction")
    builder.edge("dbr:Back_to_the_Future", REL_COUNTRY, "dbr:United_States")

    builder.edge("dbr:Tom_Hanks", REL_BIRTH_PLACE, "dbr:United_States")
    builder.edge("dbr:Gary_Sinise", REL_BIRTH_PLACE, "dbr:United_States")


#: Identifiers of the curated core, exposed for tests and workloads.
CURATED_TOM_HANKS_FILMS: tuple[str, ...] = (
    "dbr:Forrest_Gump",
    "dbr:Apollo_13_(film)",
    "dbr:Cast_Away",
    "dbr:The_Green_Mile_(film)",
    "dbr:Saving_Private_Ryan",
    "dbr:Philadelphia_(film)",
)


# --------------------------------------------------------------------------- #
# Procedural extension
# --------------------------------------------------------------------------- #
def _person_name(rng: random.Random, used: set[str]) -> str:
    while True:
        name = f"{rng.choice(_FIRST_NAMES)}_{rng.choice(_LAST_NAMES)}"
        if name not in used:
            used.add(name)
            return name


def _film_title(rng: random.Random, used: set[str]) -> str:
    while True:
        title = f"The_{rng.choice(_FILM_ADJECTIVES)}_{rng.choice(_FILM_NOUNS)}"
        if title not in used:
            used.add(title)
            return title
        # Disambiguate collisions with a year-like suffix.
        title = f"{title}_{rng.randint(1960, 2019)}"
        if title not in used:
            used.add(title)
            return title


def _add_procedural_extension(builder: GraphBuilder, config: MovieKGConfig) -> None:
    rng = random.Random(config.seed)
    used_names: set[str] = set()

    for genre in _GENRES:
        builder.entity(f"dbr:{genre}", label=genre.replace("_", " "), types=[TYPE_GENRE])
    for country in _COUNTRIES:
        builder.entity(f"dbr:{country}", label=country.replace("_", " "), types=[TYPE_COUNTRY])
    for studio in _STUDIOS:
        builder.entity(f"dbr:{studio}", label=studio.replace("_", " "), types=[TYPE_STUDIO])
    for city in _CITIES:
        builder.entity(f"dbr:{city}", label=city.replace("_", " "), types=["dbo:City"])

    actors: list[str] = []
    for _ in range(config.num_actors):
        name = _person_name(rng, used_names)
        identifier = f"dbr:{name}"
        actors.append(identifier)
        builder.entity(
            identifier,
            label=name.replace("_", " "),
            types=[TYPE_ACTOR],
            categories=["dbc:Film_actors"],
            attributes={ATTR_BIRTH_YEAR: str(rng.randint(1930, 1995))},
        )
        builder.edge(identifier, REL_BIRTH_PLACE, f"dbr:{rng.choice(_CITIES)}")

    directors: list[str] = []
    for _ in range(config.num_directors):
        name = _person_name(rng, used_names)
        identifier = f"dbr:{name}"
        directors.append(identifier)
        builder.entity(
            identifier,
            label=name.replace("_", " "),
            types=[TYPE_DIRECTOR],
            categories=["dbc:Film_directors"],
            attributes={ATTR_BIRTH_YEAR: str(rng.randint(1930, 1985))},
        )

    composers: list[str] = []
    for _ in range(config.num_composers):
        name = _person_name(rng, used_names)
        identifier = f"dbr:{name}"
        composers.append(identifier)
        builder.entity(
            identifier,
            label=name.replace("_", " "),
            types=[TYPE_COMPOSER],
            categories=["dbc:Film_score_composers"],
        )

    used_titles: set[str] = set()
    for _ in range(config.num_films):
        title = _film_title(rng, used_titles)
        identifier = f"dbr:{title}"
        year = rng.randint(1960, 2019)
        builder.entity(
            identifier,
            label=title.replace("_", " "),
            types=[TYPE_FILM],
            categories=[f"dbc:{year}_films", "dbc:Feature_films"],
            attributes={
                ATTR_RUNTIME: f"{rng.randint(80, 200)} minutes",
                ATTR_RELEASE: str(year),
                ATTR_BUDGET: f"{rng.randint(5, 250)} million dollars",
            },
        )
        low, high = config.actors_per_film
        cast_size = rng.randint(low, min(high, len(actors)))
        for actor in rng.sample(actors, cast_size):
            builder.edge(identifier, REL_STARRING, actor)
        builder.edge(identifier, REL_DIRECTOR, rng.choice(directors))
        if composers and rng.random() < 0.7:
            builder.edge(identifier, REL_MUSIC, rng.choice(composers))
        builder.edge(identifier, REL_STUDIO, f"dbr:{rng.choice(_STUDIOS)}")
        builder.edge(identifier, REL_GENRE, f"dbr:{rng.choice(_GENRES)}")
        builder.edge(identifier, REL_COUNTRY, f"dbr:{rng.choice(_COUNTRIES)}")


def build_movie_kg(config: MovieKGConfig | None = None) -> KnowledgeGraph:
    """Build the synthetic movie knowledge graph.

    The graph always contains the curated Forrest Gump core; the procedural
    extension is sized by the configuration.
    """
    config = config or MovieKGConfig()
    builder = GraphBuilder("movies")
    _add_curated_core(builder)
    _add_procedural_extension(builder, config)
    return builder.build()


def small_movie_kg() -> KnowledgeGraph:
    """A small movie KG (curated core + a light procedural extension).

    Suitable for unit tests and the quickstart example: a few hundred
    entities, generated in well under a second.
    """
    return build_movie_kg(MovieKGConfig(num_films=30, num_actors=25, num_directors=8, num_composers=4))
