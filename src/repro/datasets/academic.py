"""Synthetic academic-domain knowledge graph.

The related-work section of the paper contrasts PivotE with academic search
engines (PandaSearch); the academic KG gives the library a second,
structurally different domain: papers, authors, venues, institutions and
research fields, with citation edges.  It is used by the second exploration
example and by the expansion-quality experiment to show the model is not
tuned to the movie domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..kg import GraphBuilder, KnowledgeGraph

TYPE_PAPER = "pivote:Paper"
TYPE_AUTHOR = "pivote:Author"
TYPE_VENUE = "pivote:Venue"
TYPE_INSTITUTION = "pivote:Institution"
TYPE_FIELD = "pivote:ResearchField"

REL_AUTHOR = "pivote:author"
REL_VENUE = "pivote:publishedIn"
REL_CITES = "pivote:cites"
REL_AFFILIATION = "pivote:affiliation"
REL_FIELD = "pivote:field"

ATTR_YEAR = "pivote:year"
ATTR_PAGES = "pivote:pages"

_VENUES = ["VLDB", "SIGMOD", "ICDE", "SIGIR", "WWW", "KDD", "CIKM", "EDBT"]
_FIELDS = [
    "Databases", "Information_Retrieval", "Data_Mining", "Machine_Learning",
    "Knowledge_Graphs", "Query_Processing", "Data_Integration", "Semantic_Web",
]
_INSTITUTIONS = [
    "Renmin_University", "University_of_Helsinki", "MIT", "Stanford_University",
    "Tsinghua_University", "ETH_Zurich", "University_of_Toronto", "NUS",
]
_TOPIC_WORDS = [
    "Scalable", "Adaptive", "Efficient", "Distributed", "Interactive",
    "Incremental", "Robust", "Learned", "Approximate", "Parallel",
]
_TOPIC_NOUNS = [
    "Query_Processing", "Entity_Search", "Graph_Exploration", "Index_Structures",
    "Join_Algorithms", "Data_Cleaning", "Keyword_Search", "Set_Expansion",
    "Stream_Processing", "Knowledge_Extraction",
]

_FIRST = ["Wei", "Xin", "Jun", "Li", "Anna", "Peter", "Maria", "John", "Yuki", "Olga",
          "Chen", "Hanna", "Marco", "Elena", "Raj", "Sofia", "Lars", "Mei", "Ivan", "Aisha"]
_LAST = ["Zhang", "Wang", "Li", "Chen", "Liu", "Smith", "Muller", "Kim", "Tanaka",
         "Novak", "Garcia", "Singh", "Kumar", "Johansson", "Rossi", "Silva", "Popov", "Dubois"]


@dataclass(frozen=True)
class AcademicKGConfig:
    """Size knobs of the synthetic academic KG."""

    num_papers: int = 150
    num_authors: int = 60
    authors_per_paper: tuple[int, int] = (1, 4)
    citations_per_paper: tuple[int, int] = (0, 6)
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_papers <= 0 or self.num_authors <= 0:
            raise ValueError("num_papers and num_authors must be positive")
        if self.authors_per_paper[0] <= 0 or self.authors_per_paper[1] < self.authors_per_paper[0]:
            raise ValueError("authors_per_paper must be a valid (min, max) range")
        if self.citations_per_paper[0] < 0 or self.citations_per_paper[1] < self.citations_per_paper[0]:
            raise ValueError("citations_per_paper must be a valid (min, max) range")


def build_academic_kg(config: AcademicKGConfig | None = None) -> KnowledgeGraph:
    """Build the synthetic academic knowledge graph (deterministic)."""
    config = config or AcademicKGConfig()
    rng = random.Random(config.seed)
    builder = GraphBuilder("academic")

    for venue in _VENUES:
        builder.entity(f"pv:{venue}", label=venue, types=[TYPE_VENUE])
    for field_name in _FIELDS:
        builder.entity(f"pv:{field_name}", label=field_name.replace("_", " "), types=[TYPE_FIELD])
    for institution in _INSTITUTIONS:
        builder.entity(f"pv:{institution}", label=institution.replace("_", " "), types=[TYPE_INSTITUTION])

    authors: list[str] = []
    used: set[str] = set()
    while len(authors) < config.num_authors:
        name = f"{rng.choice(_FIRST)}_{rng.choice(_LAST)}"
        if name in used:
            name = f"{name}_{len(authors)}"
        used.add(name)
        identifier = f"pv:{name}"
        authors.append(identifier)
        builder.entity(
            identifier,
            label=name.replace("_", " "),
            types=[TYPE_AUTHOR],
            categories=["pvc:Researchers"],
        )
        builder.edge(identifier, REL_AFFILIATION, f"pv:{rng.choice(_INSTITUTIONS)}")
        builder.edge(identifier, REL_FIELD, f"pv:{rng.choice(_FIELDS)}")

    papers: list[str] = []
    used_titles: set[str] = set()
    for index in range(config.num_papers):
        title = f"{rng.choice(_TOPIC_WORDS)}_{rng.choice(_TOPIC_NOUNS)}"
        if title in used_titles:
            title = f"{title}_{index}"
        used_titles.add(title)
        identifier = f"pv:{title}"
        papers.append(identifier)
        year = rng.randint(2000, 2019)
        builder.entity(
            identifier,
            label=title.replace("_", " "),
            types=[TYPE_PAPER],
            categories=[f"pvc:{year}_papers"],
            attributes={ATTR_YEAR: str(year), ATTR_PAGES: str(rng.randint(4, 16))},
        )
        low, high = config.authors_per_paper
        for author in rng.sample(authors, rng.randint(low, min(high, len(authors)))):
            builder.edge(identifier, REL_AUTHOR, author)
        builder.edge(identifier, REL_VENUE, f"pv:{rng.choice(_VENUES)}")
        builder.edge(identifier, REL_FIELD, f"pv:{rng.choice(_FIELDS)}")
        low_c, high_c = config.citations_per_paper
        if papers[:-1]:
            cited_count = min(rng.randint(low_c, high_c), len(papers) - 1)
            for cited in rng.sample(papers[:-1], cited_count):
                builder.edge(identifier, REL_CITES, cited)

    return builder.build()


def small_academic_kg() -> KnowledgeGraph:
    """A small academic KG for unit tests."""
    return build_academic_kg(AcademicKGConfig(num_papers=40, num_authors=20))
