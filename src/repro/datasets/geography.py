"""Small geography knowledge graph (countries, cities, rivers, continents).

A third domain used mainly for the cross-domain pivot example: starting from
the movie KG one can pivot via ``dbo:country`` edges into the geography
domain when the graphs are merged, which exercises the "switch across
multi-domains freely" behaviour the paper's challenge (3) describes.
"""

from __future__ import annotations

from ..kg import GraphBuilder, KnowledgeGraph

TYPE_COUNTRY = "dbo:Country"
TYPE_CITY = "dbo:City"
TYPE_RIVER = "dbo:River"
TYPE_CONTINENT = "dbo:Continent"

REL_CAPITAL = "dbo:capital"
REL_CONTINENT = "dbo:continent"
REL_FLOWS_THROUGH = "dbo:flowsThrough"
REL_LARGEST_CITY = "dbo:largestCity"
REL_LOCATED_IN = "dbo:locatedIn"

ATTR_POPULATION = "dbo:population"
ATTR_AREA = "dbo:area"

_COUNTRIES = {
    "United_States": ("Washington_DC", "New_York_City", "North_America", "331 million"),
    "United_Kingdom": ("London", "London", "Europe", "67 million"),
    "France": ("Paris", "Paris", "Europe", "68 million"),
    "Germany": ("Berlin", "Berlin", "Europe", "83 million"),
    "Italy": ("Rome", "Rome", "Europe", "59 million"),
    "Japan": ("Tokyo", "Tokyo", "Asia", "125 million"),
    "Canada": ("Ottawa", "Toronto", "North_America", "38 million"),
    "Australia": ("Canberra", "Sydney", "Oceania", "26 million"),
    "Spain": ("Madrid", "Madrid", "Europe", "47 million"),
    "South_Korea": ("Seoul", "Seoul", "Asia", "52 million"),
    "China": ("Beijing", "Shanghai", "Asia", "1412 million"),
    "Finland": ("Helsinki", "Helsinki", "Europe", "5.5 million"),
}

_RIVERS = {
    "Mississippi_River": ["United_States"],
    "Thames": ["United_Kingdom"],
    "Seine": ["France"],
    "Rhine": ["Germany", "France"],
    "Yangtze": ["China"],
    "Danube": ["Germany"],
}


def build_geography_kg() -> KnowledgeGraph:
    """Build the (fixed, deterministic) geography knowledge graph."""
    builder = GraphBuilder("geography")
    continents = {"North_America", "Europe", "Asia", "Oceania"}
    for continent in sorted(continents):
        builder.entity(f"dbr:{continent}", label=continent.replace("_", " "), types=[TYPE_CONTINENT])

    for country, (capital, largest, continent, population) in _COUNTRIES.items():
        builder.entity(
            f"dbr:{country}",
            label=country.replace("_", " "),
            types=[TYPE_COUNTRY],
            categories=[f"dbc:Countries_in_{continent}"],
            attributes={ATTR_POPULATION: population},
        )
        for city in {capital, largest}:
            builder.entity(f"dbr:{city}", label=city.replace("_", " "), types=[TYPE_CITY])
            builder.edge(f"dbr:{city}", REL_LOCATED_IN, f"dbr:{country}")
            builder.edge(f"dbr:{city}", REL_CONTINENT, f"dbr:{continent}")
        builder.edge(f"dbr:{country}", REL_CAPITAL, f"dbr:{capital}")
        builder.edge(f"dbr:{country}", REL_LARGEST_CITY, f"dbr:{largest}")
        builder.edge(f"dbr:{country}", REL_CONTINENT, f"dbr:{continent}")

    for river, countries in _RIVERS.items():
        builder.entity(f"dbr:{river}", label=river.replace("_", " "), types=[TYPE_RIVER])
        for country in countries:
            builder.edge(f"dbr:{river}", REL_FLOWS_THROUGH, f"dbr:{country}")

    return builder.build()
