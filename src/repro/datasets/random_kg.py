"""Configurable random knowledge-graph generator.

The latency-scaling experiment (E8) needs graphs of arbitrary size whose
structural parameters (number of types, relations per entity, coupling
density) can be dialled.  The generator produces a typed KG where entities
of each type are connected to entities of statistically coupled types —
the same structural property the paper relies on for pivoting — with
deterministic output given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..exceptions import DatasetError
from ..kg import GraphBuilder, KnowledgeGraph


@dataclass(frozen=True)
class RandomKGConfig:
    """Parameters of the random KG generator."""

    #: Number of entities to generate.
    num_entities: int = 1000
    #: Number of entity types; entities are assigned round-robin biased by Zipf.
    num_types: int = 10
    #: Number of distinct predicates.
    num_predicates: int = 15
    #: Average number of outgoing edges per entity.
    avg_out_degree: float = 4.0
    #: Fraction of edges that follow the type-coupling pattern (the rest are
    #: uniformly random, providing noise).
    coupling_strength: float = 0.8
    #: Number of literal attributes per entity.
    attributes_per_entity: int = 2
    #: Zipf exponent of the per-pool target choice.  ``0`` (default) keeps
    #: the historical uniform targets; positive values concentrate incoming
    #: edges on a few hub entities per type, giving the graph the popular
    #: anchors (shared stars, genres) the recommendation workload of §2.3
    #: exercises — large ``E(pi)`` holder lists and candidate pools.
    target_skew: float = 0.0
    #: Random seed.
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_entities <= 0:
            raise DatasetError("num_entities must be positive")
        if self.num_types <= 0 or self.num_predicates <= 0:
            raise DatasetError("num_types and num_predicates must be positive")
        if self.avg_out_degree <= 0:
            raise DatasetError("avg_out_degree must be positive")
        if not 0.0 <= self.coupling_strength <= 1.0:
            raise DatasetError("coupling_strength must lie in [0, 1]")
        if self.attributes_per_entity < 0:
            raise DatasetError("attributes_per_entity must be non-negative")
        if self.target_skew < 0:
            raise DatasetError("target_skew must be non-negative")


def _zipf_assignments(rng: random.Random, count: int, buckets: int) -> list[int]:
    """Assign ``count`` items to ``buckets`` with a Zipf-like skew."""
    weights = [1.0 / (rank + 1) for rank in range(buckets)]
    total = sum(weights)
    probabilities = [weight / total for weight in weights]
    return [rng.choices(range(buckets), weights=probabilities, k=1)[0] for _ in range(count)]


def build_random_kg(config: RandomKGConfig | None = None) -> KnowledgeGraph:
    """Generate a random typed knowledge graph.

    Construction recipe:

    1. entities are assigned types with a Zipf skew (a few large types,
       many small ones), mirroring real KG type distributions;
    2. a coupling table maps ``(source_type, predicate)`` to a preferred
       target type;
    3. each entity draws ``Poisson(avg_out_degree)``-ish edges: with
       probability ``coupling_strength`` the target is drawn from the
       coupled type, otherwise uniformly at random.
    """
    config = config or RandomKGConfig()
    rng = random.Random(config.seed)
    builder = GraphBuilder(f"random-{config.num_entities}")

    types = [f"pivote:Type{i}" for i in range(config.num_types)]
    predicates = [f"pivote:rel{i}" for i in range(config.num_predicates)]
    entities = [f"pivote:entity_{i}" for i in range(config.num_entities)]

    assignments = _zipf_assignments(rng, config.num_entities, config.num_types)
    members: dict[int, list[str]] = {index: [] for index in range(config.num_types)}
    for entity, type_index in zip(entities, assignments):
        members[type_index].append(entity)

    for entity, type_index in zip(entities, assignments):
        builder.entity(
            entity,
            label=entity.split(":")[-1].replace("_", " "),
            types=[types[type_index]],
            categories=[f"pivote:category_{type_index}"],
        )
        for attr_index in range(config.attributes_per_entity):
            builder.attribute(entity, f"pivote:attr{attr_index}", str(rng.randint(0, 10000)))

    # Coupling table: every (source type, predicate) prefers one target type.
    coupling: dict[tuple[int, str], int] = {}
    for type_index in range(config.num_types):
        for predicate in predicates:
            coupling[(type_index, predicate)] = rng.randrange(config.num_types)

    # Cumulative Zipf weights per pool for skewed target choice, computed
    # lazily (one cumulative array per pool length is enough: every pool is
    # ranked by construction order).
    cumulative_cache: dict[int, list[float]] = {}

    def _pick_target(pool: list[str]) -> str:
        if config.target_skew <= 0:
            return rng.choice(pool)
        cumulative = cumulative_cache.get(len(pool))
        if cumulative is None:
            total = 0.0
            cumulative = []
            for rank in range(len(pool)):
                total += 1.0 / (rank + 1) ** config.target_skew
                cumulative.append(total)
            cumulative_cache[len(pool)] = cumulative
        return rng.choices(pool, cum_weights=cumulative, k=1)[0]

    for entity, type_index in zip(entities, assignments):
        # Geometric-ish degree around the configured average.
        degree = max(1, int(rng.expovariate(1.0 / config.avg_out_degree)))
        for _ in range(degree):
            predicate = rng.choice(predicates)
            if rng.random() < config.coupling_strength:
                target_type = coupling[(type_index, predicate)]
                # Zipf assignment can leave small types empty on small
                # graphs; fall back to the full pool instead of crashing.
                pool = members[target_type] or entities
            else:
                pool = entities
            target = _pick_target(pool)
            if target != entity:
                builder.edge(entity, predicate, target)

    return builder.build()


def scaling_series(sizes: tuple[int, ...] = (200, 500, 1000, 2000), seed: int = 42) -> dict[int, KnowledgeGraph]:
    """Random KGs of growing size used by the latency-scaling experiment."""
    return {
        size: build_random_kg(RandomKGConfig(num_entities=size, seed=seed))
        for size in sizes
    }
