"""Query workloads and ground truth for the quantitative experiments.

The demo paper does not publish relevance judgements, so the workloads are
constructed from the graphs themselves, the standard protocol of the
underlying entity-set-expansion papers:

* **expansion workloads** pick a target concept definable as a crisp set
  (e.g. "films starring Tom Hanks" = ``E(Tom_Hanks:starring)``), sample a
  few members as seeds, and treat the remaining members as the relevant
  set to be recovered;
* **search workloads** derive keyword queries from entity names, attributes
  and categories, with the source entity as the single relevant answer.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import DatasetError
from ..features import Direction, SemanticFeature, matching_entities
from ..kg import KnowledgeGraph, label_from_identifier


@dataclass(frozen=True)
class ExpansionTask:
    """One entity-set-expansion task: seeds plus the held-out relevant set."""

    name: str
    seeds: tuple[str, ...]
    relevant: tuple[str, ...]
    concept_feature: str = ""

    def __post_init__(self) -> None:
        overlap = set(self.seeds) & set(self.relevant)
        if overlap:
            raise DatasetError(f"seeds and relevant sets overlap: {sorted(overlap)}")


@dataclass(frozen=True)
class SearchTask:
    """One keyword-search task: a query string and its relevant entities."""

    query: str
    relevant: tuple[str, ...]
    description: str = ""


def expansion_tasks_from_features(
    graph: KnowledgeGraph,
    num_tasks: int = 20,
    seeds_per_task: int = 2,
    min_concept_size: int = 5,
    seed: int = 17,
) -> list[ExpansionTask]:
    """Build expansion tasks from the graph's own semantic features.

    Every (anchor, predicate) pair whose matching set has at least
    ``min_concept_size`` members defines a concept; seeds are sampled from
    the members, the rest are the relevant set.
    """
    if seeds_per_task <= 0:
        raise DatasetError("seeds_per_task must be positive")
    if min_concept_size <= seeds_per_task:
        raise DatasetError("min_concept_size must exceed seeds_per_task")
    rng = random.Random(seed)
    concepts: list[tuple[SemanticFeature, list[str]]] = []
    seen_keys: set[tuple[str, str, str]] = set()
    for entity_id in sorted(graph.entities()):
        for predicate, target in graph.outgoing(entity_id):
            feature = SemanticFeature(anchor=target, predicate=predicate, direction=Direction.OBJECT_OF)
            if feature.key in seen_keys:
                continue
            seen_keys.add(feature.key)
            members = sorted(matching_entities(graph, feature))
            if len(members) >= min_concept_size:
                concepts.append((feature, members))
    if not concepts:
        raise DatasetError("graph contains no concept large enough for expansion tasks")
    rng.shuffle(concepts)
    tasks: list[ExpansionTask] = []
    for feature, members in concepts[:num_tasks]:
        seeds = rng.sample(members, seeds_per_task)
        relevant = [member for member in members if member not in seeds]
        tasks.append(
            ExpansionTask(
                name=feature.notation(),
                seeds=tuple(seeds),
                relevant=tuple(relevant),
                concept_feature=feature.notation(),
            )
        )
    return tasks


def tom_hanks_task(graph: KnowledgeGraph, seeds: Sequence[str] = ("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")) -> ExpansionTask:
    """The paper's demo scenario as an expansion task.

    Seeds are Forrest Gump and Apollo 13; the relevant set is every other
    film starring Tom Hanks present in the graph.
    """
    feature = SemanticFeature("dbr:Tom_Hanks", "dbo:starring", Direction.OBJECT_OF)
    members = sorted(matching_entities(graph, feature))
    if not members:
        raise DatasetError("graph does not contain Tom Hanks films")
    relevant = tuple(member for member in members if member not in set(seeds))
    return ExpansionTask(
        name="films starring Tom Hanks",
        seeds=tuple(seeds),
        relevant=relevant,
        concept_feature=feature.notation(),
    )


def search_tasks_from_labels(
    graph: KnowledgeGraph,
    num_tasks: int = 30,
    seed: int = 23,
    drop_token_probability: float = 0.3,
) -> list[SearchTask]:
    """Build keyword-search tasks from entity names and categories.

    Each task's query is the entity's label, sometimes with a token dropped
    and sometimes with a category word appended — simulating the partial,
    noisy queries users type.  The originating entity is the relevant
    answer.
    """
    if not 0.0 <= drop_token_probability < 1.0:
        raise DatasetError("drop_token_probability must lie in [0, 1)")
    rng = random.Random(seed)
    candidates = [
        entity_id
        for entity_id in sorted(graph.entities())
        if graph.labels_of(entity_id) or graph.categories_of(entity_id)
    ]
    if not candidates:
        raise DatasetError("graph has no labelled entities to derive search tasks from")
    rng.shuffle(candidates)
    tasks: list[SearchTask] = []
    for entity_id in candidates:
        if len(tasks) >= num_tasks:
            break
        label = graph.label(entity_id)
        tokens = label.split()
        if len(tokens) > 1 and rng.random() < drop_token_probability:
            drop = rng.randrange(len(tokens))
            tokens = [token for index, token in enumerate(tokens) if index != drop]
        query = " ".join(tokens)
        categories = sorted(graph.categories_of(entity_id))
        if categories and rng.random() < 0.4:
            category_word = label_from_identifier(categories[0]).split()[-1]
            query = f"{query} {category_word}"
        if not query.strip():
            continue
        tasks.append(SearchTask(query=query, relevant=(entity_id,), description=f"find {label}"))
    return tasks


def seed_count_sweep(
    task: ExpansionTask, max_seeds: int = 5, seed: int = 31
) -> dict[int, ExpansionTask]:
    """Derive tasks with 1..max_seeds seeds from one expansion task.

    Used by the scalability and quality experiments to study the effect of
    the number of example entities.
    """
    rng = random.Random(seed)
    all_members = list(task.seeds) + list(task.relevant)
    sweep: dict[int, ExpansionTask] = {}
    for count in range(1, min(max_seeds, len(all_members) - 1) + 1):
        seeds = rng.sample(all_members, count)
        relevant = tuple(member for member in all_members if member not in seeds)
        sweep[count] = ExpansionTask(
            name=f"{task.name} ({count} seeds)",
            seeds=tuple(seeds),
            relevant=relevant,
            concept_feature=task.concept_feature,
        )
    return sweep
