"""Exception hierarchy for the PivotE reproduction.

Every error raised by the library derives from :class:`PivotEError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class PivotEError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class KnowledgeGraphError(PivotEError):
    """Base class for errors raised by the knowledge-graph substrate."""


class EntityNotFoundError(KnowledgeGraphError):
    """Raised when an entity identifier is not present in the graph."""

    def __init__(self, entity_id: str) -> None:
        super().__init__(f"entity not found in knowledge graph: {entity_id!r}")
        self.entity_id = entity_id


class PredicateNotFoundError(KnowledgeGraphError):
    """Raised when a predicate is not present in the graph."""

    def __init__(self, predicate: str) -> None:
        super().__init__(f"predicate not found in knowledge graph: {predicate!r}")
        self.predicate = predicate


class InvalidTripleError(KnowledgeGraphError):
    """Raised when a triple is malformed (empty subject/predicate/object)."""


class GraphIOError(KnowledgeGraphError):
    """Raised when loading or saving a knowledge graph fails."""


class IndexError_(PivotEError):
    """Base class for errors raised by the inverted-index substrate."""


class FieldNotFoundError(IndexError_):
    """Raised when a retrieval field is not part of the index schema."""

    def __init__(self, field: str) -> None:
        super().__init__(f"unknown retrieval field: {field!r}")
        self.field = field


class SearchError(PivotEError):
    """Base class for errors raised by the search engine."""


class EmptyQueryError(SearchError):
    """Raised when a keyword query contains no indexable terms."""


class RankingError(PivotEError):
    """Base class for errors raised by the recommendation engine."""


class NoSeedEntitiesError(RankingError):
    """Raised when a ranking request is issued with an empty seed set."""


class ExplorationError(PivotEError):
    """Base class for errors raised by the exploration-session layer."""


class InvalidOperationError(ExplorationError):
    """Raised when an exploration operation cannot be applied to the state."""


class SessionStateError(ExplorationError):
    """Raised when session history is accessed inconsistently."""


class VisualizationError(PivotEError):
    """Base class for errors raised by the visualisation layer."""


class DatasetError(PivotEError):
    """Raised when a synthetic dataset cannot be generated as requested."""


class EvaluationError(PivotEError):
    """Raised when an evaluation run is misconfigured."""
