"""Small shared utilities with no domain knowledge."""

from .lru import LRUCache

__all__ = ["LRUCache"]
