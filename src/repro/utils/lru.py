"""The shared LRU result cache of the search and recommendation engines.

Both engines used to hand-roll the same ``OrderedDict`` LRU with hit/miss
counters, a ``cache_info()`` report and epoch-based invalidation; this
class keeps the two eviction/stats paths in sync (ROADMAP open item).

The cache is thread-safe: every operation runs under one internal mutex,
so concurrent readers hammering ``get``/``put`` while a mutation thread
calls ``clear``/``sync_epoch`` can neither corrupt the ``OrderedDict``
(whose recency moves are multi-step) nor observe a half-applied epoch
change, and ``cache_info()`` reads one consistent counter snapshot.
Values are stored by reference: engines are expected to cache immutable
payloads (tuples, frozen dataclasses, read-only mappings).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "key absent" from a legitimately cached falsy
#: payload (``None``, ``()``, empty mappings): using ``None`` as the
#: ``dict.get`` default conflated the two, so a cached ``None`` counted as
#: a miss and never refreshed its recency.
_MISSING = object()


class LRUCache(Generic[K, V]):
    """A bounded mapping with least-recently-used eviction and counters.

    ``maxsize <= 0`` disables storage entirely (every ``get`` is a miss
    and ``put`` is a no-op), matching the engines' ``*_cache_size = 0``
    configuration contract.
    """

    __slots__ = ("_data", "_maxsize", "_hits", "_misses", "_epoch", "_lock")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        #: Epoch the entries are valid for (see :meth:`sync_epoch`).
        self._epoch: int | None = None
        self._lock = threading.Lock()

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def get(self, key: K) -> V | None:
        """The cached value (refreshing its recency), or ``None``.

        Counts a hit or a miss; use :meth:`peek` for stat-free access.
        A stored value of ``None`` is a hit (indistinguishable from a miss
        by return value alone, but counted and recency-refreshed as a hit).
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value  # type: ignore[return-value]

    def peek(self, key: K) -> V | None:
        """The cached value without touching recency or counters."""
        with self._lock:
            return self._data.get(key)

    def put(self, key: K, value: V, epoch: int | None = None) -> bool:
        """Store a value, evicting the least recently used past ``maxsize``.

        With ``epoch`` given, the store only happens when the cache is
        still synced to that epoch — the atomic compare-and-put a
        concurrent writer needs: a result computed against an old
        snapshot is silently dropped instead of being published into a
        cache that a mutation (via :meth:`sync_epoch`) has since moved
        on.  Returns whether the value was stored.
        """
        if self._maxsize <= 0:
            return False
        with self._lock:
            if epoch is not None and self._epoch is not None and epoch != self._epoch:
                return False
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
            return True

    def clear(self) -> None:
        """Drop every entry; hit/miss counters are kept."""
        with self._lock:
            self._data.clear()

    def sync_epoch(self, epoch: int) -> bool:
        """Clear the cache when ``epoch`` moved since the last sync.

        Engines key their payload validity on a mutation epoch (index or
        graph); calling this before every access makes any mutation
        invalidate all entries.  Returns ``True`` when the cache was
        cleared.
        """
        with self._lock:
            if self._epoch is None:
                self._epoch = epoch
                return False
            if epoch != self._epoch:
                self._data.clear()
                self._epoch = epoch
                return True
            return False

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy (``cache_info()`` convention).

        The report is taken under the mutex, so the counters and the size
        belong to one consistent moment even while other threads mutate.
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._data),
                "maxsize": self._maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data
