"""Command-line interface to the PivotE system.

The original demo is a web application; this CLI provides the same
interaction surface in a terminal, which is both a convenient way to try
the system and the programmatic entry point the examples and docs refer to.

Subcommands
-----------
``stats``       print dataset statistics for one of the built-in KGs
``search``      keyword entity search (Fig 3-a/c)
``recommend``   entity + semantic-feature recommendation for seed entities
``matrix``      render the heat-map matrix for seed entities (Fig 3-f)
``profile``     show an entity's profile (Fig 3-d)
``explain``     explain why two entities are related (the explanation area)
``explore``     replay a scripted exploration session and print the path (Fig 4)
``save``        build the system and persist a durable snapshot directory
``load``        cold-start from a durable snapshot and print a summary

Usage::

    python -m repro.cli search "forrest gump"
    python -m repro.cli recommend dbr:Forrest_Gump "dbr:Apollo_13_(film)"
    python -m repro.cli matrix dbr:Forrest_Gump --top-entities 6
    python -m repro.cli explain dbr:Forrest_Gump "dbr:Apollo_13_(film)"
    python -m repro.cli --pruning blockmax --show-pruning search "forrest gump"
    python -m repro.cli --dataset movies save /tmp/pivote-snap
    python -m repro.cli load /tmp/pivote-snap
    python -m repro.cli --snapshot-dir /tmp/pivote-snap search "forrest gump"
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence
from dataclasses import replace

from .config import EXECUTOR_CHOICES, PRUNING_MODES, STORAGE_MODES, PivotEConfig
from .datasets import build_academic_kg, build_geography_kg, build_movie_kg, small_movie_kg
from .engine import PivotE
from .features import SemanticFeature
from .kg import KnowledgeGraph, compute_statistics, load_ntriples
from .viz import render_matrix_ascii, render_path_ascii, render_profile_text

#: Registry of built-in datasets selectable with ``--dataset``.
DATASETS: dict[str, Callable[[], KnowledgeGraph]] = {
    "movies": build_movie_kg,
    "movies-small": small_movie_kg,
    "academic": build_academic_kg,
    "geography": build_geography_kg,
}


def load_graph(dataset: str, graph_file: str | None) -> KnowledgeGraph:
    """Load the requested dataset (or an N-Triples file)."""
    if graph_file:
        return load_ntriples(graph_file)
    if dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}")
    return DATASETS[dataset]()


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="pivote",
        description="PivotE: entity-oriented exploratory search over knowledge graphs",
    )
    parser.add_argument(
        "--dataset",
        default="movies-small",
        help=f"built-in dataset to load ({', '.join(sorted(DATASETS))})",
    )
    parser.add_argument(
        "--graph-file",
        default=None,
        help="load the knowledge graph from an N-Triples file instead",
    )
    parser.add_argument(
        "--pruning",
        default=None,
        choices=PRUNING_MODES,
        help=(
            "top-k execution strategy for both engines: 'off' (plain "
            "accumulators), 'maxscore' (threshold-pruned, the default) or "
            "'blockmax' (block-max bounds + galloping refinement); "
            "rankings are identical in every mode"
        ),
    )
    parser.add_argument(
        "--show-pruning",
        action="store_true",
        help="print the engines' cumulative pruning counters after the command",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "partition both engines' execution into N document/entity "
            "shards (see repro.exec); rankings are identical for every "
            "shard count, 1 (the default) is the serial path"
        ),
    )
    parser.add_argument(
        "--columnar",
        default=None,
        choices=("on", "off"),
        help=(
            "score through the columnar postings view and vectorized "
            "kernels ('on', the default) or the scalar per-posting loops "
            "('off', the A/B arm); rankings are identical either way"
        ),
    )
    parser.add_argument(
        "--graph-topology",
        default=None,
        choices=("on", "off"),
        help=(
            "traverse through the columnar graph topology — CSR adjacency "
            "plus interval-encoded type reachability — ('on', the default) "
            "or the scalar per-edge walks ('off', the A/B arm); results "
            "are identical either way"
        ),
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=EXECUTOR_CHOICES,
        help=(
            "how shard fan-outs run: 'inline' (serial), 'thread' (the "
            "in-process pool), 'process' (worker processes attached to "
            "the shared-memory snapshot) or 'auto' (the default: inline "
            "for 1 shard, threads otherwise); rankings are identical in "
            "every mode"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker count for the thread/process executors (0, the "
            "default, sizes the pool from the CPU count)"
        ),
    )
    parser.add_argument(
        "--feature-chunk",
        type=int,
        default=None,
        metavar="N",
        help=(
            "feature columns per correction chunk of the recommendation "
            "ranker's blockmax mode (default 2): type groups are "
            "re-checked against θ and retired at every chunk boundary; "
            "rankings are identical for every chunk size"
        ),
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable snapshot directory: engine-backed commands cold-start "
            "from it when it holds a saved system (falling back to a fresh "
            "build), and implies --storage disk unless overridden"
        ),
    )
    parser.add_argument(
        "--storage",
        default=None,
        choices=STORAGE_MODES,
        help=(
            "snapshot storage backend: 'shm' (shared-memory segments for "
            "the process executor, the default), 'disk' (additionally "
            "persist each build under --snapshot-dir) or 'off' (publish "
            "nothing; process-tier workers score inline)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("stats", help="print dataset statistics")

    search = subparsers.add_parser("search", help="keyword entity search")
    search.add_argument(
        "keywords",
        help="the keyword query (with --batch: a query file, one query per line, or '-' for stdin)",
    )
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument(
        "--batch",
        action="store_true",
        help=(
            "treat KEYWORDS as a file of queries (one per line; '-' reads "
            "stdin) and answer them in one search_many batch"
        ),
    )

    recommend = subparsers.add_parser("recommend", help="recommend similar entities")
    recommend.add_argument("seeds", nargs="+", help="seed entity identifiers")
    recommend.add_argument("--top-entities", type=int, default=10)
    recommend.add_argument("--top-features", type=int, default=10)
    recommend.add_argument("--feature", action="append", default=[], help="pin a semantic feature (anchor:predicate)")

    matrix = subparsers.add_parser("matrix", help="render the heat-map matrix")
    matrix.add_argument("seeds", nargs="+", help="seed entity identifiers")
    matrix.add_argument("--top-entities", type=int, default=8)
    matrix.add_argument("--top-features", type=int, default=12)

    profile = subparsers.add_parser("profile", help="show an entity profile")
    profile.add_argument("entity", help="the entity identifier")

    explain = subparsers.add_parser("explain", help="explain why two entities are related")
    explain.add_argument("left")
    explain.add_argument("right")

    explore = subparsers.add_parser("explore", help="replay a scripted exploration session")
    explore.add_argument("keywords", help="initial keyword query")
    explore.add_argument("--select", action="append", default=[], help="entity to select as example")
    explore.add_argument("--pivot", default=None, help="entity to pivot on at the end")

    save = subparsers.add_parser(
        "save", help="build the system and persist a durable snapshot"
    )
    save.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="target directory (defaults to --snapshot-dir)",
    )

    load = subparsers.add_parser(
        "load", help="cold-start from a durable snapshot and print a summary"
    )
    load.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="snapshot directory (defaults to --snapshot-dir)",
    )

    return parser


def _read_batch_queries(source: str) -> list[str]:
    """Queries for ``search --batch``: one per non-blank line of the input."""
    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(source, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    return [line.strip() for line in lines if line.strip()]


def _print_hit_lines(hits) -> None:
    if not hits:
        print("(no matching entities)")
        return
    for hit in hits:
        print(f"{hit.score:10.3f}  {hit.label:<36} {hit.entity_id}")


def _print_hits(system: PivotE, keywords: str, top_k: int) -> None:
    _print_hit_lines(system.search(keywords, top_k=top_k))


def _print_recommendation(system: PivotE, recommendation, top_entities: int, top_features: int) -> None:
    print("entities:")
    for entity in recommendation.entities[:top_entities]:
        print(f"  {entity.score:10.4f}  {system.graph.label(entity.entity_id):<36} {entity.entity_id}")
    print("semantic features:")
    for scored in recommendation.features[:top_features]:
        print(f"  {scored.score:10.4f}  {scored.feature.notation()}")


def build_config(
    pruning: str | None,
    shards: int | None = None,
    columnar: str | None = None,
    executor: str | None = None,
    workers: int | None = None,
    feature_chunk: int | None = None,
    snapshot_dir: str | None = None,
    storage: str | None = None,
    graph_topology: str | None = None,
) -> PivotEConfig:
    """The system configuration for the CLI's execution-layer overrides."""
    config = PivotEConfig.default()
    search_changes: dict[str, object] = {}
    ranking_changes: dict[str, object] = {}
    if snapshot_dir is not None and storage is None:
        storage = "disk"  # a snapshot directory implies the durable backend
    if snapshot_dir is not None:
        search_changes["snapshot_dir"] = snapshot_dir
        ranking_changes["snapshot_dir"] = snapshot_dir
    if storage is not None:
        search_changes["storage"] = storage
        ranking_changes["storage"] = storage
    if pruning is not None:
        search_changes["pruning"] = pruning
        ranking_changes["pruning"] = pruning
    if shards is not None:
        search_changes["shards"] = shards
        ranking_changes["shards"] = shards
    if columnar is not None:
        search_changes["columnar"] = columnar == "on"
        ranking_changes["columnar"] = columnar == "on"
    if executor is not None:
        search_changes["executor"] = executor
        ranking_changes["executor"] = executor
    if workers is not None:
        search_changes["workers"] = workers
        ranking_changes["workers"] = workers
    if feature_chunk is not None:
        ranking_changes["feature_chunk"] = feature_chunk
    if graph_topology is not None:
        search_changes["graph_topology"] = graph_topology == "on"
        ranking_changes["graph_topology"] = graph_topology == "on"
    if not search_changes and not ranking_changes:
        return config
    return replace(
        config,
        search=config.search.with_(**search_changes),
        ranking=config.ranking.with_(**ranking_changes),
    )


def _print_pruning_info(system: PivotE) -> None:
    """Dump both engines' cumulative pruning counters (``--show-pruning``).

    Routed through the unified :meth:`PivotE.stats` record; the printed
    dicts are the same counters the legacy ``pruning_info()`` shims
    report.
    """
    stats = system.stats()
    print(f"pruning mode: {stats.pruning} (columnar: {'on' if stats.columnar else 'off'})")
    print(f"pruning[search]:    {stats.child('search').pruning_view('mlm').as_counters()}")
    recommend = stats.child("recommendation").pruning_view("entity-ranker").as_counters()
    print(f"pruning[recommend]: {recommend}")
    executor = stats.child("search").executor
    if executor is not None:
        print(f"executor[search]:   {executor.as_dict()}")
    if stats.traversal is not None:
        print(f"traversal[topology]: {stats.traversal.as_dict()}")


def _print_load_summary(directory: str, system: PivotE) -> None:
    storage = system.stats().storage
    print(
        f"loaded {directory}: graph {system.graph.name!r} at epoch "
        f"{system.graph.epoch} ({len(system.graph)} triples), "
        f"{system.search_engine.num_indexed()} entities indexed"
    )
    if storage is not None:
        print(
            f"cold start: {storage.cold_start_ms:.1f} ms "
            f"({storage.attaches} snapshots attached, "
            f"{storage.attached_bytes} bytes, {storage.failures} failures)"
        )


def run_command(args: argparse.Namespace) -> int:
    """Execute a parsed CLI command; return the process exit code."""
    config = build_config(
        args.pruning,
        args.shards,
        args.columnar,
        args.executor,
        args.workers,
        args.feature_chunk,
        args.snapshot_dir,
        args.storage,
        args.graph_topology,
    )

    if args.command == "load":
        directory = args.directory or args.snapshot_dir
        if not directory:
            raise SystemExit("load needs a directory argument (or --snapshot-dir)")
        system = PivotE.load(directory, config=config)
        _print_load_summary(directory, system)
        return 0

    graph = load_graph(args.dataset, args.graph_file)

    if args.command == "stats":
        print(compute_statistics(graph).summary())
        return 0

    if args.command == "save":
        directory = args.directory or args.snapshot_dir
        if not directory:
            raise SystemExit("save needs a directory argument (or --snapshot-dir)")
        system = PivotE(graph, config=config)
        manifest = system.save(directory)
        info = manifest["graph"]
        print(
            f"saved {directory}: graph {info['name']!r} at epoch "
            f"{info['epoch']} ({info['triples']} triples), "
            f"keys {manifest['keys']}"
        )
        return 0

    system = _load_or_build(graph, config, args.snapshot_dir)
    exit_code = _run_system_command(system, args)
    if exit_code == 0 and args.show_pruning:
        _print_pruning_info(system)
    return exit_code


def _load_or_build(
    graph: KnowledgeGraph, config: PivotEConfig, snapshot_dir: str | None
) -> PivotE:
    """Cold-start from the snapshot directory when possible, else build.

    The snapshot must describe the same graph the CLI just loaded
    (epoch and triple count match) — anything else, including an empty
    or missing directory, silently falls back to the fresh build.
    """
    if snapshot_dir:
        from .storage import SnapshotUnavailable

        try:
            system = PivotE.load(snapshot_dir, config=config)
        except SnapshotUnavailable:
            pass
        else:
            if (
                system.graph.epoch == graph.epoch
                and len(system.graph) == len(graph)
            ):
                return system
            system.close()
    return PivotE(graph, config=config)


def _run_system_command(system: PivotE, args: argparse.Namespace) -> int:
    """Dispatch one engine-backed subcommand; return the process exit code."""
    if args.command == "search":
        if args.batch:
            queries = _read_batch_queries(args.keywords)
            if not queries:
                print("(no queries in batch input)")
                return 0
            for position, (query, hits) in enumerate(
                zip(queries, system.search_many(queries, top_k=args.top_k))
            ):
                if position:
                    print()
                print(f"query: {query}")
                _print_hit_lines(hits)
            return 0
        _print_hits(system, args.keywords, args.top_k)
        return 0

    if args.command == "recommend":
        pinned = [SemanticFeature.parse(notation) for notation in args.feature]
        recommendation = system.recommend(
            args.seeds,
            pinned_features=pinned,
            top_entities=args.top_entities,
            top_features=args.top_features,
        )
        _print_recommendation(system, recommendation, args.top_entities, args.top_features)
        return 0

    if args.command == "matrix":
        recommendation = system.recommend(
            args.seeds, top_entities=args.top_entities, top_features=args.top_features
        )
        print(
            render_matrix_ascii(
                system.matrix_for(recommendation),
                max_entities=args.top_entities,
                max_features=args.top_features,
            )
        )
        return 0

    if args.command == "profile":
        print(render_profile_text(system.lookup(args.entity)))
        return 0

    if args.command == "explain":
        print(system.explain(args.left, args.right).text)
        return 0

    if args.command == "explore":
        session = system.start_session("cli")
        response = system.submit_keywords(session, args.keywords)
        _print_hits(system, args.keywords, 5)
        for entity in args.select:
            response = system.select_entity(session, entity)
        if args.pivot:
            response = system.pivot(session, args.pivot)
        if response.recommendation is not None:
            _print_recommendation(system, response.recommendation, 8, 8)
        print("\nexploratory path:")
        print(render_path_ascii(session.path))
        return 0

    raise SystemExit(f"unhandled command: {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run_command(args)
    except Exception as exc:  # surfaced as a message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
