"""Fluent builder for assembling knowledge graphs.

The synthetic dataset generators and the tests create many small graphs; the
builder removes the boilerplate of repeating the subject identifier and of
remembering the structural predicates for labels, types and categories.

Example
-------
>>> from repro.kg import GraphBuilder
>>> kg = (
...     GraphBuilder("demo")
...     .entity("dbr:Forrest_Gump", label="Forrest Gump", types=["dbo:Film"])
...     .edge("dbr:Forrest_Gump", "dbo:starring", "dbr:Tom_Hanks")
...     .build()
... )
>>> kg.has_entity("dbr:Tom_Hanks")
True
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .graph import KnowledgeGraph
from .namespaces import NamespaceRegistry
from .triple import Literal


class GraphBuilder:
    """Incrementally assemble a :class:`KnowledgeGraph`."""

    def __init__(self, name: str = "kg", namespaces: NamespaceRegistry | None = None) -> None:
        self._graph = KnowledgeGraph(name, namespaces=namespaces)

    def entity(
        self,
        identifier: str,
        label: str | None = None,
        types: Sequence[str] | None = None,
        categories: Sequence[str] | None = None,
        attributes: Mapping[str, str | Sequence[str]] | None = None,
        aliases: Sequence[str] | None = None,
    ) -> "GraphBuilder":
        """Declare an entity with its descriptive structure in one call."""
        if label is not None:
            self._graph.add_label(identifier, label)
        for type_id in types or ():
            self._graph.add_type(identifier, type_id)
        for category in categories or ():
            self._graph.add_category(identifier, category)
        for predicate, value in (attributes or {}).items():
            values = [value] if isinstance(value, str) else list(value)
            for item in values:
                self._graph.add_attribute(identifier, predicate, item)
        for alias in aliases or ():
            self._graph.add_alias(identifier, alias)
        return self

    def edge(self, subject: str, predicate: str, obj: str) -> "GraphBuilder":
        """Add an object-property edge between two entities."""
        self._graph.add(subject, predicate, obj)
        return self

    def edges(self, subject: str, predicate: str, objects: Iterable[str]) -> "GraphBuilder":
        """Add one edge per object, all sharing the same subject/predicate."""
        for obj in objects:
            self._graph.add(subject, predicate, obj)
        return self

    def attribute(self, subject: str, predicate: str, value: str, datatype: str = "string") -> "GraphBuilder":
        """Add a literal attribute."""
        self._graph.add(subject, predicate, Literal(value, datatype=datatype))
        return self

    def label(self, subject: str, label: str) -> "GraphBuilder":
        """Add an ``rdfs:label``."""
        self._graph.add_label(subject, label)
        return self

    def type(self, subject: str, type_id: str) -> "GraphBuilder":
        """Add an ``rdf:type`` declaration."""
        self._graph.add_type(subject, type_id)
        return self

    def category(self, subject: str, category: str) -> "GraphBuilder":
        """Add a ``dct:subject`` declaration."""
        self._graph.add_category(subject, category)
        return self

    def alias(self, subject: str, alias_entity: str) -> "GraphBuilder":
        """Add a redirect alias."""
        self._graph.add_alias(subject, alias_entity)
        return self

    def merge(self, other: KnowledgeGraph) -> "GraphBuilder":
        """Merge all triples from another graph."""
        self._graph.merge(other)
        return self

    def build(self) -> KnowledgeGraph:
        """Return the assembled graph."""
        return self._graph
