"""Triple and literal primitives of the RDF knowledge-graph substrate.

The paper represents the KG as a set of triples ``<s, p, o>``.  Subjects and
predicates are always identifiers (CURIEs or IRIs); objects are either
identifiers (object properties, i.e. edges between entities) or literals
(datatype properties such as ``"142 minutes"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidTripleError


@dataclass(frozen=True)
class Literal:
    """A literal value attached to an entity.

    Parameters
    ----------
    value:
        The lexical form, e.g. ``"142 minutes"`` or ``"1994"``.
    datatype:
        Optional datatype tag (``"string"``, ``"integer"``, ``"float"``,
        ``"date"``); purely informational.
    language:
        Optional BCP-47 language tag, e.g. ``"en"``.
    """

    value: str
    datatype: str = "string"
    language: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.value, str):
            raise InvalidTripleError(
                f"literal value must be a string, got {type(self.value).__name__}"
            )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The object position of a triple: an entity identifier or a literal.
TripleObject = str | Literal


@dataclass(frozen=True)
class Triple:
    """An RDF triple ``<subject, predicate, object>``.

    Examples
    --------
    >>> Triple("dbr:Forrest_Gump", "dbo:starring", "dbr:Tom_Hanks")
    Triple(subject='dbr:Forrest_Gump', predicate='dbo:starring', object='dbr:Tom_Hanks')
    >>> Triple("dbr:Forrest_Gump", "dbo:runtime", Literal("142 minutes"))
    Triple(subject='dbr:Forrest_Gump', predicate='dbo:runtime', object=Literal(value='142 minutes', datatype='string', language=''))
    """

    subject: str
    predicate: str
    object: TripleObject

    def __post_init__(self) -> None:
        if not self.subject or not isinstance(self.subject, str):
            raise InvalidTripleError(f"invalid subject: {self.subject!r}")
        if not self.predicate or not isinstance(self.predicate, str):
            raise InvalidTripleError(f"invalid predicate: {self.predicate!r}")
        if isinstance(self.object, str):
            if not self.object:
                raise InvalidTripleError("object identifier must be non-empty")
        elif not isinstance(self.object, Literal):
            raise InvalidTripleError(
                f"object must be an identifier or Literal, got {type(self.object).__name__}"
            )

    @property
    def is_literal(self) -> bool:
        """True when the object is a literal value."""
        return isinstance(self.object, Literal)

    @property
    def is_entity_edge(self) -> bool:
        """True when the object is an entity identifier (an edge in the KG)."""
        return isinstance(self.object, str)

    @property
    def object_value(self) -> str:
        """The object as a plain string (identifier or literal lexical form)."""
        return self.object.value if isinstance(self.object, Literal) else self.object

    def reversed(self) -> "Triple":
        """Return the triple with subject and object swapped.

        Only defined for entity edges; reversing a literal triple is
        meaningless and raises :class:`InvalidTripleError`.
        """
        if not self.is_entity_edge:
            raise InvalidTripleError("cannot reverse a literal triple")
        return Triple(subject=self.object, predicate=self.predicate, object=self.subject)  # type: ignore[arg-type]

    def as_tuple(self) -> tuple[str, str, TripleObject]:
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self.subject, self.predicate, self.object)

    def __str__(self) -> str:
        if self.is_literal:
            return f'<{self.subject}, {self.predicate}, "{self.object_value}">'
        return f"<{self.subject}, {self.predicate}, {self.object}>"


def make_triple(subject: str, predicate: str, obj: TripleObject) -> Triple:
    """Convenience constructor mirroring :class:`Triple` with validation."""
    return Triple(subject=subject, predicate=predicate, object=obj)
