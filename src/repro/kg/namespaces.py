"""Namespace handling for knowledge-graph identifiers.

Web-scale KGs such as DBpedia identify entities and predicates with IRIs.
This module provides a tiny namespace registry so that the rest of the
library can work with short, readable CURIEs (``dbr:Forrest_Gump``) while
still being able to expand them to full IRIs for serialization and to
compact full IRIs back when loading external data.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

#: Namespaces used by the synthetic datasets; modelled on DBpedia.
DEFAULT_NAMESPACES: Mapping[str, str] = {
    "dbr": "http://dbpedia.org/resource/",
    "dbo": "http://dbpedia.org/ontology/",
    "dbp": "http://dbpedia.org/property/",
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "dct": "http://purl.org/dc/terms/",
    "pivote": "http://pivote.example.org/ontology/",
}

#: Well-known predicates referenced throughout the library.
RDF_TYPE = "rdf:type"
RDFS_LABEL = "rdfs:label"
DCT_SUBJECT = "dct:subject"
REDIRECT = "dbo:wikiPageRedirects"
DISAMBIGUATES = "dbo:wikiPageDisambiguates"


@dataclass
class NamespaceRegistry:
    """Bidirectional mapping between namespace prefixes and IRI bases.

    The registry is deliberately forgiving: identifiers that do not match a
    registered prefix are passed through unchanged, which lets the library
    operate on plain string identifiers without requiring full IRIs.
    """

    prefixes: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_NAMESPACES)
    )

    def register(self, prefix: str, base_iri: str) -> None:
        """Register (or overwrite) a namespace prefix."""
        if not prefix or ":" in prefix:
            raise ValueError(f"invalid namespace prefix: {prefix!r}")
        if not base_iri:
            raise ValueError("base IRI must be non-empty")
        self.prefixes[prefix] = base_iri

    def expand(self, curie: str) -> str:
        """Expand ``prefix:local`` into a full IRI.

        Unknown prefixes and identifiers without a colon are returned
        unchanged.
        """
        prefix, sep, local = curie.partition(":")
        if not sep or prefix not in self.prefixes:
            return curie
        return self.prefixes[prefix] + local

    def compact(self, iri: str) -> str:
        """Compact a full IRI into ``prefix:local`` when a prefix matches.

        The longest matching base IRI wins; non-matching IRIs are returned
        unchanged.
        """
        best: tuple[int, str] | None = None
        for prefix, base in self.prefixes.items():
            if iri.startswith(base):
                candidate = (len(base), prefix)
                if best is None or candidate > best:
                    best = candidate
        if best is None:
            return iri
        _, prefix = best
        return f"{prefix}:{iri[len(self.prefixes[prefix]):]}"

    def split(self, curie: str) -> tuple[str, str]:
        """Split a CURIE into ``(prefix, local_name)``.

        Identifiers without a registered prefix are returned with an empty
        prefix and the original string as the local name.
        """
        prefix, sep, local = curie.partition(":")
        if sep and prefix in self.prefixes:
            return prefix, local
        return "", curie

    def local_name(self, curie: str) -> str:
        """Return the local (human-oriented) part of an identifier."""
        return self.split(curie)[1]

    def __contains__(self, prefix: str) -> bool:
        return prefix in self.prefixes

    def __iter__(self) -> Iterator[str]:
        return iter(self.prefixes)

    def __len__(self) -> int:
        return len(self.prefixes)


def label_from_identifier(identifier: str) -> str:
    """Derive a human-readable label from an entity identifier.

    ``dbr:Forrest_Gump`` becomes ``"Forrest Gump"``.  This mirrors how
    DBpedia resource names map to rdfs labels and is used as a fallback when
    an entity carries no explicit label triple.
    """
    local = identifier.rsplit(":", 1)[-1]
    local = local.rsplit("/", 1)[-1]
    return local.replace("_", " ").strip()
