"""Columnar graph topology — per-epoch CSR adjacency + interval-encoded types.

PRs 6–8 vectorized both *scoring* hot paths, but expansion still walked
the knowledge graph edge-by-edge in Python: `bfs_reachable` /
`connecting_entities` pop one entity at a time, and
:meth:`~repro.expansion.expander.EntitySetExpander.expand` filters each
candidate with an ``entity_id in members`` set probe.  This module gives
the graph the same columnar treatment the postings and feature tables
got:

* an **entity ordinal table** assigned in sorted-``entity_id`` order (so
  ordinal comparisons reproduce string comparisons exactly, like the doc
  and feature ordinals do) with **outgoing and incoming CSR adjacency**
  (``out_offsets``/``out_targets`` + a parallel ``out_preds``
  predicate-ordinal column, rows sorted by ``(neighbour, predicate)``);
* an **interval encoding of the type universe** in the XPath-accelerator
  style: a containment forest derived from strict member-set inclusion
  (the parent of a type is its *smallest* strict superset) is walked
  depth-first assigning ``pre``/``post`` clocks, so "every type under
  ``T``" is the contiguous ``pre_order`` slice
  ``[pre_position[T], pre_position[T] + subtree_size[T])`` and "every
  entity under ``T``" is a range gather over the per-type sorted
  member-ordinal CSR.  Because a descendant's member set is contained in
  its ancestor's by construction, the subtree union equals the type's own
  member set — which is what keeps the interval filter byte-identical to
  the scalar ``entity_id in members`` probe;
* **frontier-at-a-time kernels**: level-synchronous
  :meth:`GraphTopology.bfs_reachable_ords` (gather both CSR directions
  for the whole frontier, ``np.unique``, mask the visited), sorted-array
  :meth:`GraphTopology.connecting_ords` (intersect the two one-hop
  neighbourhoods with ``searchsorted`` and join the deduped left
  predicate sets against the right edge multiset), and the
  ``searchsorted`` member intersect behind the expander's type
  restriction.

Instances are immutable and memoised per :attr:`KnowledgeGraph.epoch`
via :func:`graph_topology` (the graph-side sibling of
``columnar_tables``); :class:`TraversalCounters` accumulates the shared
traversal telemetry surfaced as :class:`~repro.stats.TraversalStats`.
The array layout round-trips through the PR 9 segment codec as the
``"graph-topology"`` segment kind (:func:`repro.storage.codec.
encode_graph_topology`), so worker processes attach it from shared
memory and ``PivotE.save``/``load`` persist it to the disk tier.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..stats import TraversalStats
from .graph import KnowledgeGraph


def _csr_gather(offsets: np.ndarray, values: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenate the CSR rows selected by ``rows`` (one vectorized pass)."""
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    flat = np.repeat(starts, lengths) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(lengths) - lengths, lengths)
    )
    return values[flat]


class TraversalCounters:
    """Mutable traversal telemetry shared by every component on one graph.

    One instance lives on the graph (``graph._topology_counters``) so the
    search engine, the recommendation engine and the facade all report
    the same numbers — mirroring how the pruning counters accumulate on
    the scorers.  :func:`traversal_stats` freezes it into the typed
    :class:`~repro.stats.TraversalStats` record.
    """

    __slots__ = (
        "bfs_queries",
        "connect_queries",
        "frontier_entities",
        "edges_touched",
        "interval_filters",
        "interval_hits",
        "cache_hits",
        "rebuilds",
    )

    def __init__(self) -> None:
        self.bfs_queries = 0
        self.connect_queries = 0
        self.frontier_entities = 0
        self.edges_touched = 0
        self.interval_filters = 0
        self.interval_hits = 0
        self.cache_hits = 0
        self.rebuilds = 0


class GraphTopology:
    """Per-epoch columnar snapshot of one knowledge graph's topology.

    Built once per graph epoch (:meth:`from_graph`, memoised by
    :func:`graph_topology`) or reconstructed zero-copy from an attached
    ``"graph-topology"`` segment (:meth:`from_arrays`).  All arrays are
    read-only by convention — attached segments literally are.
    """

    __slots__ = (
        "epoch",
        "num_entities",
        "entity_ids",
        "ordinal_of",
        "_id_array",
        "predicates",
        "predicate_ord",
        "out_offsets",
        "out_targets",
        "out_preds",
        "in_offsets",
        "in_sources",
        "in_preds",
        "type_ids",
        "type_ord",
        "type_offsets",
        "type_members",
        "type_parents",
        "type_pre",
        "type_post",
        "pre_order",
        "subtree_sizes",
        "_pre_positions",
        "_under",
    )

    def __init__(
        self,
        epoch: int,
        entity_ids: list[str],
        predicates: list[str],
        type_ids: list[str],
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_preds: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_preds: np.ndarray,
        type_offsets: np.ndarray,
        type_members: np.ndarray,
        type_parents: np.ndarray,
        type_pre: np.ndarray,
        type_post: np.ndarray,
        pre_order: np.ndarray,
        subtree_sizes: np.ndarray,
    ) -> None:
        self.epoch = epoch
        self.num_entities = len(entity_ids)
        self.entity_ids = entity_ids
        self.ordinal_of = {entity_id: ordinal for ordinal, entity_id in enumerate(entity_ids)}
        self._id_array: np.ndarray | None = None
        self.predicates = predicates
        self.predicate_ord = {predicate: ordinal for ordinal, predicate in enumerate(predicates)}
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.out_preds = out_preds
        self.in_offsets = in_offsets
        self.in_sources = in_sources
        self.in_preds = in_preds
        self.type_ids = type_ids
        self.type_ord = {type_id: ordinal for ordinal, type_id in enumerate(type_ids)}
        self.type_offsets = type_offsets
        self.type_members = type_members
        self.type_parents = type_parents
        self.type_pre = type_pre
        self.type_post = type_post
        self.pre_order = pre_order
        self.subtree_sizes = subtree_sizes
        # Inverse permutation of ``pre_order``: where each type ordinal
        # sits in the pre-order walk — the left edge of its interval.
        pre_positions = np.empty(len(type_ids), dtype=np.int64)
        if len(type_ids):
            pre_positions[pre_order] = np.arange(len(type_ids), dtype=np.int64)
        self._pre_positions = pre_positions
        self._under: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "GraphTopology":
        """Materialise the topology of the graph's current epoch.

        Runs under :attr:`KnowledgeGraph.lock` so one consistent graph
        state is folded in even while writers mutate concurrently.
        """
        with graph.lock:
            epoch = graph.epoch
            entity_ids = sorted(graph.entities())
            ordinal_of = {entity_id: ordinal for ordinal, entity_id in enumerate(entity_ids)}
            predicates = sorted(graph.edge_predicates())
            predicate_ord = {
                predicate: ordinal for ordinal, predicate in enumerate(predicates)
            }

            out_offsets, out_targets, out_preds = cls._build_adjacency(
                entity_ids, ordinal_of, predicate_ord, graph.outgoing
            )
            in_offsets, in_sources, in_preds = cls._build_adjacency(
                entity_ids, ordinal_of, predicate_ord, graph.incoming
            )

            type_ids = sorted(graph.types())
            member_sets = [
                {ordinal_of[member] for member in graph.entities_of_type(type_id)}
                for type_id in type_ids
            ]

        type_offsets = np.zeros(len(type_ids) + 1, dtype=np.int64)
        member_rows: list[int] = []
        for ordinal, members in enumerate(member_sets):
            member_rows.extend(sorted(members))
            type_offsets[ordinal + 1] = len(member_rows)
        type_members = np.asarray(member_rows, dtype=np.int64)

        type_parents = cls._containment_forest(type_ids, member_sets)
        type_pre, type_post, pre_order, subtree_sizes = cls._interval_encode(type_parents)

        return cls(
            epoch=epoch,
            entity_ids=entity_ids,
            predicates=predicates,
            type_ids=type_ids,
            out_offsets=out_offsets,
            out_targets=out_targets,
            out_preds=out_preds,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_preds=in_preds,
            type_offsets=type_offsets,
            type_members=type_members,
            type_parents=type_parents,
            type_pre=type_pre,
            type_post=type_post,
            pre_order=pre_order,
            subtree_sizes=subtree_sizes,
        )

    @classmethod
    def from_arrays(
        cls,
        *,
        epoch: int,
        entity_ids: list[str],
        predicates: list[str],
        type_ids: list[str],
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_preds: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_preds: np.ndarray,
        type_offsets: np.ndarray,
        type_members: np.ndarray,
        type_parents: np.ndarray,
        type_pre: np.ndarray,
        type_post: np.ndarray,
        pre_order: np.ndarray,
        subtree_sizes: np.ndarray,
    ) -> "GraphTopology":
        """Rebuild a topology from decoded segment arrays (worker side)."""
        return cls(
            epoch=epoch,
            entity_ids=entity_ids,
            predicates=predicates,
            type_ids=type_ids,
            out_offsets=out_offsets,
            out_targets=out_targets,
            out_preds=out_preds,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_preds=in_preds,
            type_offsets=type_offsets,
            type_members=type_members,
            type_parents=type_parents,
            type_pre=type_pre,
            type_post=type_post,
            pre_order=pre_order,
            subtree_sizes=subtree_sizes,
        )

    @staticmethod
    def _build_adjacency(entity_ids, ordinal_of, predicate_ord, edges_of):
        """One direction's CSR: rows sorted by ``(neighbour, predicate)``."""
        offsets = np.zeros(len(entity_ids) + 1, dtype=np.int64)
        neighbour_rows: list[int] = []
        predicate_rows: list[int] = []
        for ordinal, entity_id in enumerate(entity_ids):
            row = sorted(
                (ordinal_of[neighbour], predicate_ord[predicate])
                for predicate, neighbour in edges_of(entity_id)
            )
            neighbour_rows.extend(pair[0] for pair in row)
            predicate_rows.extend(pair[1] for pair in row)
            offsets[ordinal + 1] = len(neighbour_rows)
        return (
            offsets,
            np.asarray(neighbour_rows, dtype=np.int64),
            np.asarray(predicate_rows, dtype=np.int64),
        )

    @staticmethod
    def _containment_forest(type_ids: list[str], member_sets: list[set[int]]) -> np.ndarray:
        """Parent of each type: its smallest strict member-set superset.

        Ties break on type name; types with no strict superset (including
        equal-membership siblings) are forest roots (parent ``-1``).
        """
        parents = np.full(len(type_ids), -1, dtype=np.int64)
        for ordinal, members in enumerate(member_sets):
            best = -1
            for candidate, candidate_members in enumerate(member_sets):
                if candidate == ordinal or not members < candidate_members:
                    continue
                if best < 0 or (len(candidate_members), type_ids[candidate]) < (
                    len(member_sets[best]),
                    type_ids[best],
                ):
                    best = candidate
            parents[ordinal] = best
        return parents

    @staticmethod
    def _interval_encode(parents: np.ndarray):
        """Pre/post-order clocks over the containment forest.

        A virtual root walks the forest roots in type-name order (the
        ordinals are name-sorted already), assigning each type a
        ``pre``/``post`` clock pair; ``u`` is under ``t`` iff
        ``pre[t] <= pre[u]`` and ``post[u] <= post[t]``.  The pre-order
        walk itself (``pre_order``) plus each subtree's node count turns
        that predicate into a contiguous slice.
        """
        count = int(parents.size)
        children: list[list[int]] = [[] for _ in range(count)]
        roots: list[int] = []
        for ordinal in range(count):
            parent = int(parents[ordinal])
            if parent < 0:
                roots.append(ordinal)
            else:
                children[parent].append(ordinal)
        pre = np.zeros(count, dtype=np.int64)
        post = np.zeros(count, dtype=np.int64)
        pre_order: list[int] = []
        positions = np.zeros(count, dtype=np.int64)
        sizes = np.zeros(count, dtype=np.int64)
        clock = 0
        stack: list[tuple[int, bool]] = [(root, False) for root in reversed(roots)]
        while stack:
            node, exiting = stack.pop()
            if exiting:
                post[node] = clock
                clock += 1
                sizes[node] = len(pre_order) - positions[node]
                continue
            pre[node] = clock
            clock += 1
            positions[node] = len(pre_order)
            pre_order.append(node)
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(children[node]))
        return pre, post, np.asarray(pre_order, dtype=np.int64), sizes

    # ------------------------------------------------------------------ #
    # Ordinal/string mapping
    # ------------------------------------------------------------------ #
    def ordinals_of(self, entity_ids: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized id→ordinal lookup: ``(ordinals, known_mask)``.

        Unknown identifiers get ordinal 0 with ``known_mask`` ``False``;
        the sorted unicode comparison matches Python string order, so
        ``searchsorted`` here is exact.
        """
        if not len(entity_ids) or not self.num_entities:
            return (
                np.zeros(len(entity_ids), dtype=np.int64),
                np.zeros(len(entity_ids), dtype=bool),
            )
        if self._id_array is None:
            self._id_array = np.asarray(self.entity_ids)
        queries = np.asarray(list(entity_ids))
        positions = np.searchsorted(self._id_array, queries)
        known = positions < self.num_entities
        safe = np.where(known, positions, 0)
        known &= self._id_array[safe] == queries
        return np.where(known, safe, 0), known

    # ------------------------------------------------------------------ #
    # Interval-encoded type reachability
    # ------------------------------------------------------------------ #
    def types_under(self, type_ordinal: int) -> np.ndarray:
        """Type ordinals in the subtree rooted at ``type_ordinal`` (incl. self)."""
        position = int(self._pre_positions[type_ordinal])
        return self.pre_order[position : position + int(self.subtree_sizes[type_ordinal])]

    def entities_under(self, type_ordinal: int) -> np.ndarray:
        """Sorted member ordinals of the subtree under ``type_ordinal``.

        By the containment construction this equals the type's own member
        row — the interval union is how the range encoding answers the
        query without consulting member sets.  Memoised per type.
        """
        cached = self._under.get(type_ordinal)
        if cached is None:
            rows = _csr_gather(self.type_offsets, self.type_members, self.types_under(type_ordinal))
            cached = np.unique(rows)
            self._under[type_ordinal] = cached
        return cached

    def entities_under_id(self, type_id: str) -> np.ndarray:
        """Like :meth:`entities_under`, by type identifier (empty if unknown)."""
        ordinal = self.type_ord.get(type_id)
        if ordinal is None:
            return np.zeros(0, dtype=np.int64)
        return self.entities_under(ordinal)

    # ------------------------------------------------------------------ #
    # Frontier-at-a-time kernels
    # ------------------------------------------------------------------ #
    def bfs_reachable_ords(
        self,
        start_ordinal: int,
        max_hops: int,
        counters: TraversalCounters | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Level-synchronous BFS: ``(reached_ordinals, depths)``.

        Expands the whole frontier per level — both CSR directions
        gathered in one pass each — so depths are minimal hop counts,
        exactly like the scalar queue walk.
        """
        depth = np.full(self.num_entities, -1, dtype=np.int64)
        depth[start_ordinal] = 0
        frontier = np.asarray([start_ordinal], dtype=np.int64)
        if counters is not None:
            counters.frontier_entities += 1
        level = 0
        while frontier.size and level < max_hops:
            neighbours = np.concatenate(
                (
                    _csr_gather(self.out_offsets, self.out_targets, frontier),
                    _csr_gather(self.in_offsets, self.in_sources, frontier),
                )
            )
            if counters is not None:
                counters.edges_touched += int(neighbours.size)
            neighbours = np.unique(neighbours)
            frontier = neighbours[depth[neighbours] < 0]
            depth[frontier] = level + 1
            level += 1
            if counters is not None:
                counters.frontier_entities += int(frontier.size)
        reached = np.nonzero(depth >= 0)[0]
        return reached, depth[reached]

    def connecting_ords(
        self,
        left_ordinal: int,
        right_ordinal: int,
        counters: TraversalCounters | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Length-two connections: ``(anchors, left_preds, right_preds)``.

        The left one-hop neighbourhood is deduped to unique
        ``(anchor, predicate)`` pairs (the scalar walk's per-anchor
        predicate *set*); the right neighbourhood stays a multiset (the
        scalar walk emits one row per right *edge*).  Their sorted-array
        intersect plus a CSR join reproduces the scalar enumeration, and
        because ordinals are assigned in string-sorted order the final
        ``lexsort`` equals the scalar walk's tuple sort.
        """
        left_targets, left_preds = self._one_hop(left_ordinal)
        right_targets, right_preds = self._one_hop(right_ordinal)
        if counters is not None:
            counters.edges_touched += int(left_targets.size + right_targets.size)
        empty = np.zeros(0, dtype=np.int64)
        if not left_targets.size or not right_targets.size:
            return empty, empty, empty

        pairs = np.unique(np.stack((left_targets, left_preds), axis=1), axis=0)
        pair_anchors = pairs[:, 0]
        pair_preds = pairs[:, 1]
        unique_anchors, starts = np.unique(pair_anchors, return_index=True)
        anchor_offsets = np.append(starts, pair_anchors.size).astype(np.int64)

        positions = np.searchsorted(unique_anchors, right_targets)
        safe = np.minimum(positions, unique_anchors.size - 1)
        matched = (
            (unique_anchors[safe] == right_targets)
            & (right_targets != left_ordinal)
            & (right_targets != right_ordinal)
        )
        if not matched.any():
            return empty, empty, empty
        selected = safe[matched]
        selected_right_preds = right_preds[matched]

        lengths = anchor_offsets[selected + 1] - anchor_offsets[selected]
        flat = _csr_gather(anchor_offsets, np.arange(pair_anchors.size, dtype=np.int64), selected)
        anchors = pair_anchors[flat]
        out_left = pair_preds[flat]
        out_right = np.repeat(selected_right_preds, lengths)
        order = np.lexsort((out_right, out_left, anchors))
        return anchors[order], out_left[order], out_right[order]

    def _one_hop(self, ordinal: int) -> tuple[np.ndarray, np.ndarray]:
        """Both directions' ``(neighbour, predicate)`` edge rows of one entity."""
        out_lo, out_hi = int(self.out_offsets[ordinal]), int(self.out_offsets[ordinal + 1])
        in_lo, in_hi = int(self.in_offsets[ordinal]), int(self.in_offsets[ordinal + 1])
        return (
            np.concatenate((self.out_targets[out_lo:out_hi], self.in_sources[in_lo:in_hi])),
            np.concatenate((self.out_preds[out_lo:out_hi], self.in_preds[in_lo:in_hi])),
        )


# ---------------------------------------------------------------------- #
# Per-graph memoisation and telemetry
# ---------------------------------------------------------------------- #
def topology_counters(graph: KnowledgeGraph) -> TraversalCounters:
    """The graph's shared traversal counters (created on first use).

    A benign race at first access can create two counter objects; one
    wins the attribute store and all later increments land on it.
    """
    counters = getattr(graph, "_topology_counters", None)
    if counters is None:
        counters = TraversalCounters()
        graph._topology_counters = counters  # type: ignore[attr-defined]
    return counters


def graph_topology(graph: KnowledgeGraph) -> GraphTopology:
    """The graph's memoised per-epoch :class:`GraphTopology`.

    Rebuilt (under :attr:`KnowledgeGraph.lock`) whenever the graph's
    epoch has moved past the memo — the graph-side mirror of
    ``columnar_tables`` on feature snapshots.
    """
    counters = topology_counters(graph)
    topology = getattr(graph, "_topology", None)
    if topology is not None and topology.epoch == graph.epoch:
        counters.cache_hits += 1
        return topology
    with graph.lock:
        topology = getattr(graph, "_topology", None)
        if topology is not None and topology.epoch == graph.epoch:
            counters.cache_hits += 1
            return topology
        topology = GraphTopology.from_graph(graph)
        graph._topology = topology  # type: ignore[attr-defined]
        counters.rebuilds += 1
    return topology


def install_topology(graph: KnowledgeGraph, topology: GraphTopology) -> None:
    """Seed the graph's topology memo with a restored snapshot.

    Used by ``PivotE.load`` so the first traversal after a cold start is
    a cache hit instead of an O(edges) rebuild.  Epoch-mismatched
    snapshots are ignored — the memo check would reject them anyway.
    """
    if topology.epoch == graph.epoch:
        graph._topology = topology  # type: ignore[attr-defined]


def traversal_stats(graph: KnowledgeGraph) -> TraversalStats:
    """Freeze the graph's traversal counters into the typed stats record."""
    counters = topology_counters(graph)
    return TraversalStats(
        bfs_queries=counters.bfs_queries,
        connect_queries=counters.connect_queries,
        frontier_entities=counters.frontier_entities,
        edges_touched=counters.edges_touched,
        interval_filters=counters.interval_filters,
        interval_hits=counters.interval_hits,
        cache_hits=counters.cache_hits,
        rebuilds=counters.rebuilds,
    )
