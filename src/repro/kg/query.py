"""A minimal SPARQL-like structured query engine over the knowledge graph.

The paper positions PivotE against "effective accesses of the KGs in a
structured manner like SPARQL".  To make that comparison concrete (and to
give power users a structured escape hatch), this module implements basic
graph-pattern matching over :class:`~repro.kg.graph.KnowledgeGraph`:

* **triple patterns** with variables (``?film dbo:starring dbr:Tom_Hanks``),
  including ``rdf:type`` and literal-attribute patterns;
* **basic graph patterns** (conjunctions of triple patterns) solved with a
  straightforward binding-propagation join, most-selective pattern first;
* ``SELECT``-style projection with ``DISTINCT``, ``LIMIT`` and simple
  equality / substring ``FILTER`` predicates.

The engine is intentionally small — it is a substrate for tests, examples
and the comparison experiment, not a standards-compliant SPARQL
implementation — but the query surface mirrors how the demo's users would
have written structured queries instead of exploring.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..exceptions import KnowledgeGraphError
from .graph import KnowledgeGraph
from .namespaces import RDF_TYPE

#: A variable binding: variable name (without ``?``) -> bound value.
Binding = dict[str, str]


def is_variable(term: str) -> bool:
    """True when a query term is a variable (``?name``)."""
    return term.startswith("?")


def variable_name(term: str) -> str:
    """Strip the leading ``?`` of a variable term."""
    return term[1:] if term.startswith("?") else term


@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern; any position may be a variable (``?x``)."""

    subject: str
    predicate: str
    object: str

    def __post_init__(self) -> None:
        for position, term in (("subject", self.subject), ("predicate", self.predicate), ("object", self.object)):
            if not term:
                raise KnowledgeGraphError(f"empty {position} in triple pattern")

    def variables(self) -> set[str]:
        """The variable names used by this pattern."""
        return {
            variable_name(term)
            for term in (self.subject, self.predicate, self.object)
            if is_variable(term)
        }

    def bound(self, binding: Binding) -> "TriplePattern":
        """Substitute bound variables into the pattern."""

        def resolve(term: str) -> str:
            if is_variable(term) and variable_name(term) in binding:
                return binding[variable_name(term)]
            return term

        return TriplePattern(resolve(self.subject), resolve(self.predicate), resolve(self.object))

    def describe(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."


@dataclass(frozen=True)
class Filter:
    """A simple filter over one variable.

    ``op`` is one of ``"eq"``, ``"neq"``, ``"contains"`` (case-insensitive
    substring over the value or, for entities, over their label).
    """

    variable: str
    op: str
    value: str

    def __post_init__(self) -> None:
        if self.op not in ("eq", "neq", "contains"):
            raise KnowledgeGraphError(f"unknown filter operator: {self.op!r}")

    def accepts(self, graph: KnowledgeGraph, binding: Binding) -> bool:
        bound = binding.get(variable_name(self.variable))
        if bound is None:
            return True
        if self.op == "eq":
            return bound == self.value
        if self.op == "neq":
            return bound != self.value
        haystack = bound.lower()
        if graph.has_entity(bound):
            haystack = f"{haystack} {graph.label(bound).lower()}"
        return self.value.lower() in haystack


@dataclass(frozen=True)
class SelectQuery:
    """A SELECT query: projection + basic graph pattern + filters."""

    variables: tuple[str, ...]
    patterns: tuple[TriplePattern, ...]
    filters: tuple[Filter, ...] = ()
    distinct: bool = True
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.patterns:
            raise KnowledgeGraphError("a SELECT query needs at least one triple pattern")
        if self.limit is not None and self.limit <= 0:
            raise KnowledgeGraphError("LIMIT must be positive")
        pattern_vars: set[str] = set()
        for pattern in self.patterns:
            pattern_vars |= pattern.variables()
        unknown = [v for v in self.variables if variable_name(v) not in pattern_vars]
        if unknown:
            raise KnowledgeGraphError(f"projected variables not used in any pattern: {unknown}")

    def describe(self) -> str:
        head = "SELECT " + ("DISTINCT " if self.distinct else "") + " ".join(self.variables)
        body = " ".join(pattern.describe() for pattern in self.patterns)
        tail = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"{head} WHERE {{ {body} }}{tail}"


class QueryEngine:
    """Evaluates :class:`SelectQuery` objects against a knowledge graph."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------ #
    # Triple-pattern matching
    # ------------------------------------------------------------------ #
    def _match_pattern(self, pattern: TriplePattern) -> Iterator[Binding]:
        """Yield bindings for one (possibly partially bound) pattern."""
        graph = self._graph
        s_var = is_variable(pattern.subject)
        p_var = is_variable(pattern.predicate)
        o_var = is_variable(pattern.object)

        def emit(subject: str, predicate: str, obj: str) -> Binding:
            binding: Binding = {}
            if s_var:
                binding[variable_name(pattern.subject)] = subject
            if p_var:
                binding[variable_name(pattern.predicate)] = predicate
            if o_var:
                binding[variable_name(pattern.object)] = obj
            return binding

        # rdf:type patterns use the dedicated type index.
        if not p_var and pattern.predicate == RDF_TYPE:
            if not o_var:
                subjects = graph.entities_of_type(pattern.object) if s_var else (
                    {pattern.subject} if pattern.object in graph.types_of(pattern.subject) else set()
                )
                for subject in sorted(subjects):
                    yield emit(subject, RDF_TYPE, pattern.object)
            else:
                subjects = graph.entities() if s_var else {pattern.subject}
                for subject in sorted(subjects):
                    for type_id in sorted(graph.types_of(subject)):
                        yield emit(subject, RDF_TYPE, type_id)
            return

        if not p_var:
            predicate = pattern.predicate
            if not s_var and not o_var:
                matched = pattern.object in graph.objects(pattern.subject, predicate)
                attribute_match = pattern.object in graph.attributes_of(pattern.subject).get(predicate, [])
                if matched or attribute_match:
                    yield emit(pattern.subject, predicate, pattern.object)
                return
            if not s_var:
                for obj in sorted(graph.objects(pattern.subject, predicate)):
                    yield emit(pattern.subject, predicate, obj)
                for value in graph.attributes_of(pattern.subject).get(predicate, []):
                    yield emit(pattern.subject, predicate, value)
                return
            if not o_var:
                for subject in sorted(graph.subjects(predicate, pattern.object)):
                    yield emit(subject, predicate, pattern.object)
                return
            # Both subject and object are variables.
            for obj in sorted(graph.objects_of_predicate(predicate)):
                for subject in sorted(graph.subjects(predicate, obj)):
                    yield emit(subject, predicate, obj)
            return

        # Variable predicate: enumerate edges around bound endpoints, or all edges.
        if not s_var:
            for predicate, obj in self._graph.outgoing(pattern.subject):
                if o_var or obj == pattern.object:
                    yield emit(pattern.subject, predicate, obj)
            for predicate, values in self._graph.attributes_of(pattern.subject).items():
                for value in values:
                    if o_var or value == pattern.object:
                        yield emit(pattern.subject, predicate, value)
            return
        if not o_var:
            for predicate, subject in self._graph.incoming(pattern.object):
                yield emit(subject, predicate, pattern.object)
            return
        for triple in self._graph.triples:
            if triple.is_entity_edge:
                yield emit(triple.subject, triple.predicate, triple.object)  # type: ignore[arg-type]

    def _pattern_selectivity(self, pattern: TriplePattern, bound_vars: set[str]) -> int:
        """Lower = more selective; used to order the join."""
        score = 0
        for term in (pattern.subject, pattern.predicate, pattern.object):
            if is_variable(term) and variable_name(term) not in bound_vars:
                score += 1
        return score

    # ------------------------------------------------------------------ #
    # Query evaluation
    # ------------------------------------------------------------------ #
    def solve(self, query: SelectQuery) -> list[Binding]:
        """Evaluate a SELECT query and return projected bindings."""
        bindings: list[Binding] = [{}]
        remaining = list(query.patterns)
        while remaining:
            bound_vars: set[str] = set()
            for binding in bindings:
                bound_vars |= set(binding)
            remaining.sort(key=lambda p: self._pattern_selectivity(p, bound_vars))
            pattern = remaining.pop(0)
            next_bindings: list[Binding] = []
            for binding in bindings:
                for match in self._match_pattern(pattern.bound(binding)):
                    merged = dict(binding)
                    conflict = False
                    for variable, value in match.items():
                        if variable in merged and merged[variable] != value:
                            conflict = True
                            break
                        merged[variable] = value
                    if not conflict:
                        next_bindings.append(merged)
            bindings = next_bindings
            if not bindings:
                return []

        for filter_ in query.filters:
            bindings = [b for b in bindings if filter_.accepts(self._graph, b)]

        projected: list[Binding] = []
        seen: set[tuple[tuple[str, str], ...]] = set()
        for binding in bindings:
            row = {variable_name(v): binding.get(variable_name(v), "") for v in query.variables}
            if query.distinct:
                key = tuple(sorted(row.items()))
                if key in seen:
                    continue
                seen.add(key)
            projected.append(row)
            if query.limit is not None and len(projected) >= query.limit:
                break
        return projected

    def select(
        self,
        variables: Sequence[str],
        patterns: Sequence[tuple[str, str, str]],
        filters: Sequence[Filter] = (),
        distinct: bool = True,
        limit: int | None = None,
    ) -> list[Binding]:
        """Convenience wrapper building and solving a :class:`SelectQuery`."""
        query = SelectQuery(
            variables=tuple(variables),
            patterns=tuple(TriplePattern(*pattern) for pattern in patterns),
            filters=tuple(filters),
            distinct=distinct,
            limit=limit,
        )
        return self.solve(query)

    def ask(self, patterns: Sequence[tuple[str, str, str]]) -> bool:
        """ASK-style query: does the basic graph pattern have any solution?"""
        pattern_objects = tuple(TriplePattern(*pattern) for pattern in patterns)
        all_vars = sorted({f"?{v}" for p in pattern_objects for v in p.variables()})
        if not all_vars:
            # Fully ground pattern: evaluate with an empty projection.
            probe = SelectQuery(variables=(), patterns=pattern_objects, limit=1)
            return bool(self.solve(probe))
        query = SelectQuery(variables=tuple(all_vars), patterns=pattern_objects, limit=1)
        return bool(self.solve(query))
