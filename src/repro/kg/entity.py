"""Entity view objects over the knowledge graph.

An :class:`Entity` is a lightweight, immutable snapshot of everything the
graph knows about one identifier: its labels, types, literal attributes,
categories, aliases (redirects/disambiguations) and its neighbourhood.  The
snapshot is what the search engine turns into a five-field document and what
the UI shows in the entity-presentation area (Fig 3-d).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from .namespaces import label_from_identifier


@dataclass(frozen=True)
class Entity:
    """An immutable snapshot of a single entity.

    Attributes
    ----------
    identifier:
        The entity identifier, e.g. ``"dbr:Forrest_Gump"``.
    labels:
        Human-readable names (``rdfs:label`` values).
    types:
        Entity types (``rdf:type`` objects), e.g. ``("dbo:Film",)``.
    categories:
        Category memberships (``dct:subject`` objects).
    attributes:
        Literal attributes keyed by predicate.
    aliases:
        Names of redirected / disambiguated entities ("similar entity
        names" in Table 1 of the paper).
    related:
        Identifiers of entities connected by any object property, in either
        direction ("related entity names" in Table 1).
    outgoing:
        Object-property edges leaving this entity as ``(predicate, target)``.
    incoming:
        Object-property edges arriving at this entity as
        ``(predicate, source)``.
    """

    identifier: str
    labels: tuple[str, ...] = ()
    types: tuple[str, ...] = ()
    categories: tuple[str, ...] = ()
    attributes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    aliases: tuple[str, ...] = ()
    related: tuple[str, ...] = ()
    outgoing: tuple[tuple[str, str], ...] = ()
    incoming: tuple[tuple[str, str], ...] = ()

    @property
    def name(self) -> str:
        """The preferred display name of the entity.

        The first explicit label wins; otherwise the name is derived from the
        identifier (``dbr:Forrest_Gump`` -> ``"Forrest Gump"``).
        """
        if self.labels:
            return self.labels[0]
        return label_from_identifier(self.identifier)

    @property
    def primary_type(self) -> str:
        """The first (most specific, by convention) type, or ``""``."""
        return self.types[0] if self.types else ""

    def has_type(self, type_id: str) -> bool:
        """True when the entity is an instance of ``type_id``."""
        return type_id in self.types

    def attribute_values(self) -> tuple[str, ...]:
        """All literal attribute values, flattened, in predicate order."""
        values: list[str] = []
        for predicate in sorted(self.attributes):
            values.extend(self.attributes[predicate])
        return tuple(values)

    def degree(self) -> int:
        """Total number of object-property edges touching this entity."""
        return len(self.outgoing) + len(self.incoming)

    def neighbours(self) -> tuple[str, ...]:
        """Unique neighbouring entity identifiers (both directions)."""
        seen: dict[str, None] = {}
        for _, target in self.outgoing:
            seen.setdefault(target, None)
        for _, source in self.incoming:
            seen.setdefault(source, None)
        return tuple(seen)

    def summary(self, max_items: int = 5) -> str:
        """A short human-readable profile used by the presentation area."""
        parts = [f"{self.name} ({self.identifier})"]
        if self.types:
            parts.append("types: " + ", ".join(self.types[:max_items]))
        if self.categories:
            parts.append("categories: " + ", ".join(self.categories[:max_items]))
        attrs = self.attribute_values()
        if attrs:
            parts.append("attributes: " + ", ".join(attrs[:max_items]))
        if self.related:
            parts.append("related: " + ", ".join(self.related[:max_items]))
        return "\n".join(parts)


@dataclass(frozen=True)
class EntityProfile:
    """The entity-presentation payload of the UI (Fig 3-d).

    Besides the entity snapshot itself, the profile carries the
    Wikipedia-style external link the demo redirects to and a ranked list of
    the entity's most informative facts.
    """

    entity: Entity
    external_url: str
    top_facts: tuple[tuple[str, str], ...] = ()

    @property
    def title(self) -> str:
        return self.entity.name


def wikipedia_url(identifier: str) -> str:
    """Derive the Wikipedia URL the demo links entity names to."""
    local = identifier.rsplit(":", 1)[-1]
    return f"https://en.wikipedia.org/wiki/{local}"


def build_profile(entity: Entity, max_facts: int = 10) -> EntityProfile:
    """Build the presentation-area profile for an entity.

    Facts are ordered attributes first (they are the most specific), then
    outgoing edges, then incoming edges, truncated to ``max_facts``.
    """
    facts: list[tuple[str, str]] = []
    for predicate in sorted(entity.attributes):
        for value in entity.attributes[predicate]:
            facts.append((predicate, value))
    facts.extend(entity.outgoing)
    facts.extend((f"^{predicate}", source) for predicate, source in entity.incoming)
    return EntityProfile(
        entity=entity,
        external_url=wikipedia_url(entity.identifier),
        top_facts=tuple(facts[:max_facts]),
    )
