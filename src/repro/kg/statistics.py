"""Descriptive statistics over a knowledge graph.

The statistics serve two purposes: they power the dataset summaries printed
by the examples and benchmarks, and they expose the *statistical coupling of
types via relations* that the paper's introduction describes (films and
actors coupled via ``starring``) — the quantity the pivot operation exploits.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Mapping
from dataclasses import dataclass, field

from .graph import KnowledgeGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Aggregate statistics of a knowledge graph."""

    name: str
    num_triples: int
    num_entities: int
    num_edges: int
    num_literals: int
    num_types: int
    num_edge_predicates: int
    num_categories: int
    type_histogram: Mapping[str, int] = field(default_factory=dict)
    predicate_histogram: Mapping[str, int] = field(default_factory=dict)
    avg_out_degree: float = 0.0
    avg_in_degree: float = 0.0
    max_degree: int = 0

    def summary(self, top: int = 8) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Knowledge graph: {self.name}",
            f"  triples           : {self.num_triples}",
            f"  entities          : {self.num_entities}",
            f"  entity edges      : {self.num_edges}",
            f"  literal attributes: {self.num_literals}",
            f"  types             : {self.num_types}",
            f"  edge predicates   : {self.num_edge_predicates}",
            f"  categories        : {self.num_categories}",
            f"  avg out-degree    : {self.avg_out_degree:.2f}",
            f"  avg in-degree     : {self.avg_in_degree:.2f}",
            f"  max degree        : {self.max_degree}",
        ]
        if self.type_histogram:
            lines.append("  largest types:")
            for type_id, count in Counter(self.type_histogram).most_common(top):
                lines.append(f"    {type_id:<30} {count}")
        if self.predicate_histogram:
            lines.append("  most frequent predicates:")
            for predicate, count in Counter(self.predicate_histogram).most_common(top):
                lines.append(f"    {predicate:<30} {count}")
        return "\n".join(lines)


def compute_statistics(graph: KnowledgeGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for a graph."""
    num_literals = sum(1 for triple in graph.triples if triple.is_literal)
    type_histogram = {type_id: graph.type_count(type_id) for type_id in graph.types()}
    predicate_histogram = {
        predicate: graph.predicate_frequency(predicate)
        for predicate in graph.edge_predicates()
    }
    out_degrees: list[int] = []
    in_degrees: list[int] = []
    max_degree = 0
    for entity in graph.entities():
        out_d = len(graph.outgoing(entity))
        in_d = len(graph.incoming(entity))
        out_degrees.append(out_d)
        in_degrees.append(in_d)
        max_degree = max(max_degree, out_d + in_d)
    num_entities = graph.num_entities()
    return GraphStatistics(
        name=graph.name,
        num_triples=len(graph),
        num_entities=num_entities,
        num_edges=graph.num_edges(),
        num_literals=num_literals,
        num_types=len(graph.types()),
        num_edge_predicates=len(graph.edge_predicates()),
        num_categories=len({c for e in graph.entities() for c in graph.categories_of(e)}),
        type_histogram=type_histogram,
        predicate_histogram=predicate_histogram,
        avg_out_degree=(sum(out_degrees) / num_entities) if num_entities else 0.0,
        avg_in_degree=(sum(in_degrees) / num_entities) if num_entities else 0.0,
        max_degree=max_degree,
    )


@dataclass(frozen=True)
class TypeCoupling:
    """Statistical coupling of two entity types via a predicate.

    ``strength`` is the fraction of instances of ``source_type`` that have at
    least one ``predicate`` edge to an instance of ``target_type`` — the
    quantity that makes "films are likely to be coupled with actors via
    starring" precise.
    """

    source_type: str
    predicate: str
    target_type: str
    edge_count: int
    strength: float


def type_couplings(graph: KnowledgeGraph, min_strength: float = 0.0) -> list[TypeCoupling]:
    """Compute all type couplings present in the graph.

    Returns couplings sorted by descending strength then edge count; the list
    is what the entity-type view of Fig 1-b summarises.
    """
    pair_edges: dict[tuple[str, str, str], int] = defaultdict(int)
    pair_sources: dict[tuple[str, str, str], set] = defaultdict(set)
    for predicate in graph.edge_predicates():
        for obj in graph.objects_of_predicate(predicate):
            target_types = graph.types_of(obj) or {""}
            for subject in graph.subjects(predicate, obj):
                source_types = graph.types_of(subject) or {""}
                for source_type in source_types:
                    for target_type in target_types:
                        key = (source_type, predicate, target_type)
                        pair_edges[key] += 1
                        pair_sources[key].add(subject)
    couplings: list[TypeCoupling] = []
    for (source_type, predicate, target_type), count in pair_edges.items():
        population = graph.type_count(source_type) if source_type else graph.num_entities()
        strength = len(pair_sources[(source_type, predicate, target_type)]) / population if population else 0.0
        if strength >= min_strength:
            couplings.append(
                TypeCoupling(
                    source_type=source_type,
                    predicate=predicate,
                    target_type=target_type,
                    edge_count=count,
                    strength=strength,
                )
            )
    couplings.sort(key=lambda c: (-c.strength, -c.edge_count, c.source_type, c.predicate, c.target_type))
    return couplings


def type_distribution_of_neighbours(graph: KnowledgeGraph, entity_id: str) -> dict[str, int]:
    """Distribution of neighbour types around one entity (Fig 1-b).

    For ``dbr:Forrest_Gump`` this yields e.g. ``{"dbo:Actor": 5,
    "dbo:Director": 1, ...}`` — the "possible search directions" the paper
    highlights.
    """
    distribution: dict[str, int] = defaultdict(int)
    for neighbour in graph.neighbours(entity_id):
        types = graph.types_of(neighbour)
        if not types:
            distribution["(untyped)"] += 1
            continue
        dominant = graph.dominant_type(neighbour)
        distribution[dominant] += 1
    return dict(distribution)
