"""The in-memory knowledge-graph store.

:class:`KnowledgeGraph` is the substrate every other component builds on.  It
stores triples with three access-path indexes (by subject, by predicate and by
object) plus dedicated indexes for the structures PivotE relies on heavily:

* a type index (``rdf:type``) used for the type-based smoothing ``p(pi|c*)``
  and for the entity-type view of Fig 1-b;
* a label/alias index used to build the five-field entity representation of
  Table 1;
* per-predicate subject/object maps so that ``E(pi)`` — the set of entities
  matching a semantic feature — can be computed in O(1) lookups.

The store is deliberately simple (dictionaries of sets) but the interface is
what a production triple store would expose, so swapping in a disk-backed
implementation would not change any caller.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from collections.abc import Iterable, Iterator, Sequence

from ..exceptions import EntityNotFoundError
from .entity import Entity
from .namespaces import (
    DCT_SUBJECT,
    DISAMBIGUATES,
    NamespaceRegistry,
    RDFS_LABEL,
    RDF_TYPE,
    REDIRECT,
    label_from_identifier,
)
from .triple import Literal, Triple, TripleObject

#: Predicates that describe an entity rather than connect it to another
#: domain entity.  They are excluded from "related entities" and from the
#: semantic-feature space, matching how the paper treats labels, types and
#: categories as dedicated fields instead of exploration pointers.
STRUCTURAL_PREDICATES: frozenset[str] = frozenset(
    {RDF_TYPE, RDFS_LABEL, DCT_SUBJECT, REDIRECT, DISAMBIGUATES}
)


class KnowledgeGraph:
    """A mutable, indexed, in-memory RDF knowledge graph."""

    def __init__(self, name: str = "kg", namespaces: NamespaceRegistry | None = None) -> None:
        self.name = name
        self.namespaces = namespaces or NamespaceRegistry()
        self._triples: list[Triple] = []
        self._triple_set: set[tuple[str, str, TripleObject]] = set()
        # Access-path indexes over entity edges (object properties).
        self._spo: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        # Literal attributes: subject -> predicate -> [values]
        self._literals: dict[str, dict[str, list[Literal]]] = defaultdict(lambda: defaultdict(list))
        # Special-purpose indexes.
        self._types: dict[str, set[str]] = defaultdict(set)          # entity -> types
        self._type_members: dict[str, set[str]] = defaultdict(set)   # type -> entities
        self._labels: dict[str, list[str]] = defaultdict(list)       # entity -> labels
        self._categories: dict[str, set[str]] = defaultdict(set)     # entity -> categories
        self._category_members: dict[str, set[str]] = defaultdict(set)
        self._aliases: dict[str, set[str]] = defaultdict(set)        # entity -> alias entity ids
        self._entities: set[str] = set()
        self._predicates: set[str] = set()
        #: Mutation counter: bumped on every new triple so derived
        #: structures (feature index, recommendation caches) can detect
        #: staleness, mirroring ``FieldedIndex.epoch`` on the search side.
        self._epoch = 0
        #: Serialises mutations against the readers that iterate or copy
        #: shared containers (see :attr:`lock`); re-entrant so derived
        #: structures (the semantic-feature index) can hold it across a
        #: whole rebuild that itself calls locked accessors.
        self._lock = threading.RLock()

    @property
    def epoch(self) -> int:
        """A counter incremented on every successful mutation of the graph."""
        return self._epoch

    @property
    def lock(self) -> threading.RLock:
        """The graph's mutation lock (re-entrant).

        Concurrent-serving contract: :meth:`add_triple` holds it for every
        mutation, the accessors that iterate or copy shared containers
        hold it per call, and derived structures (the semantic-feature
        index) hold it across a whole refresh so they fold a *consistent*
        graph state into their snapshot.  Point lookups (`in`,
        ``epoch``, dictionary ``get``) stay lock-free — they are atomic
        under the GIL.
        """
        return self._lock

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, subject: str, predicate: str, obj: TripleObject) -> bool:
        """Add a triple; return False when it was already present."""
        triple = Triple(subject, predicate, obj)
        return self.add_triple(triple)

    def add_triple(self, triple: Triple) -> bool:
        """Add a :class:`Triple`; return False when it was already present.

        Runs under :attr:`lock` so readers that take it see either the
        whole mutation or none of it.
        """
        with self._lock:
            return self._add_triple_locked(triple)

    def _add_triple_locked(self, triple: Triple) -> bool:
        key = triple.as_tuple()
        if key in self._triple_set:
            return False
        self._triple_set.add(key)
        self._triples.append(triple)
        self._epoch += 1
        subject, predicate = triple.subject, triple.predicate
        self._entities.add(subject)
        self._predicates.add(predicate)

        if triple.is_literal:
            assert isinstance(triple.object, Literal)
            self._literals[subject][predicate].append(triple.object)
            if predicate == RDFS_LABEL:
                self._labels[subject].append(triple.object.value)
            return True

        obj = triple.object
        assert isinstance(obj, str)
        if predicate == RDF_TYPE:
            # Copy-on-write: the type containers are shared by reference
            # with pinned feature-index snapshots (see
            # :meth:`type_tables`), so mutations replace the sets instead
            # of growing them in place.
            types = self._types.get(subject)
            self._types[subject] = {obj} if types is None else types | {obj}
            members = self._type_members.get(obj)
            self._type_members[obj] = {subject} if members is None else members | {subject}
            return True
        if predicate == DCT_SUBJECT:
            self._categories[subject].add(obj)
            self._category_members[obj].add(subject)
            return True
        if predicate in (REDIRECT, DISAMBIGUATES):
            self._aliases[subject].add(obj)
            self._entities.add(obj)
            return True

        # A genuine entity edge.
        self._entities.add(obj)
        self._spo[subject][predicate].add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples under one lock acquisition; return how many were new."""
        with self._lock:
            return sum(1 for triple in triples if self._add_triple_locked(triple))

    def add_label(self, entity: str, label: str) -> None:
        """Attach an ``rdfs:label`` to ``entity``."""
        self.add(entity, RDFS_LABEL, Literal(label))

    def add_type(self, entity: str, type_id: str) -> None:
        """Declare ``entity rdf:type type_id``."""
        self.add(entity, RDF_TYPE, type_id)

    def add_category(self, entity: str, category: str) -> None:
        """Declare ``entity dct:subject category``."""
        self.add(entity, DCT_SUBJECT, category)

    def add_attribute(self, entity: str, predicate: str, value: str, datatype: str = "string") -> None:
        """Attach a literal attribute to ``entity``."""
        self.add(entity, predicate, Literal(value, datatype=datatype))

    def add_alias(self, entity: str, alias_entity: str) -> None:
        """Declare that ``alias_entity`` redirects to ``entity``."""
        self.add(entity, REDIRECT, alias_entity)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def triples(self) -> Sequence[Triple]:
        """All triples in insertion order."""
        return tuple(self._triples)

    def triples_since(self, count: int) -> list[Triple]:
        """The triples added after the first ``count`` ones (no full copy).

        The triple log is append-only (there is no removal API), so a
        consumer that remembers how many triples it has processed can
        fetch exactly the delta — this is what the incremental
        :meth:`repro.features.feature_index.SemanticFeatureIndex.rebuild`
        path uses to avoid re-deriving the whole index on every epoch
        change.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            return self._triples[count:]

    def entities(self) -> set[str]:
        """All entity identifiers (subjects and object-entities)."""
        with self._lock:
            return set(self._entities)

    def predicates(self) -> set[str]:
        """All predicates appearing in the graph."""
        return set(self._predicates)

    def edge_predicates(self) -> set[str]:
        """Predicates that connect entities (exploration-relevant relations)."""
        return set(self._pos.keys())

    def num_entities(self) -> int:
        return len(self._entities)

    def num_edges(self) -> int:
        """Number of object-property edges (excluding structural predicates)."""
        return sum(
            len(objs)
            for by_pred in self._spo.values()
            for objs in by_pred.values()
        )

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def require_entity(self, entity_id: str) -> None:
        """Raise :class:`EntityNotFoundError` unless the entity exists."""
        if entity_id not in self._entities:
            raise EntityNotFoundError(entity_id)

    # ------------------------------------------------------------------ #
    # Pattern queries
    # ------------------------------------------------------------------ #
    def objects(self, subject: str, predicate: str) -> set[str]:
        """Entities ``o`` with ``<subject, predicate, o>`` in the graph."""
        with self._lock:
            return set(self._spo.get(subject, {}).get(predicate, set()))

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """Entities ``s`` with ``<s, predicate, obj>`` in the graph."""
        with self._lock:
            return set(self._pos.get(predicate, {}).get(obj, set()))

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """Predicates ``p`` with ``<subject, p, obj>`` in the graph."""
        with self._lock:
            return set(self._osp.get(obj, {}).get(subject, set()))

    def outgoing(self, entity_id: str) -> list[tuple[str, str]]:
        """Object-property edges leaving ``entity_id`` as ``(predicate, target)``."""
        with self._lock:
            result: list[tuple[str, str]] = []
            for predicate, objs in self._spo.get(entity_id, {}).items():
                result.extend((predicate, obj) for obj in sorted(objs))
            return result

    def incoming(self, entity_id: str) -> list[tuple[str, str]]:
        """Object-property edges arriving at ``entity_id`` as ``(predicate, source)``."""
        with self._lock:
            result: list[tuple[str, str]] = []
            for subject, predicates in self._osp.get(entity_id, {}).items():
                result.extend((predicate, subject) for predicate in sorted(predicates))
            return result

    def neighbours(self, entity_id: str) -> set[str]:
        """Entities one object-property hop away (either direction)."""
        with self._lock:
            result: set[str] = set()
            for objs in self._spo.get(entity_id, {}).values():
                result.update(objs)
            result.update(self._osp.get(entity_id, {}).keys())
            return result

    def degree(self, entity_id: str) -> int:
        """Number of object-property edges touching ``entity_id``."""
        out = sum(len(objs) for objs in self._spo.get(entity_id, {}).values())
        inc = sum(len(preds) for preds in self._osp.get(entity_id, {}).values())
        return out + inc

    def subjects_of_predicate(self, predicate: str) -> set[str]:
        """All subjects that have at least one edge with ``predicate``."""
        result: set[str] = set()
        for obj_subjects in self._pos.get(predicate, {}).values():
            result.update(obj_subjects)
        return result

    def objects_of_predicate(self, predicate: str) -> set[str]:
        """All objects reachable via ``predicate``."""
        return set(self._pos.get(predicate, {}).keys())

    def predicate_frequency(self, predicate: str) -> int:
        """Number of edges labelled with ``predicate``."""
        return sum(len(subjects) for subjects in self._pos.get(predicate, {}).values())

    # ------------------------------------------------------------------ #
    # Types, labels, categories
    # ------------------------------------------------------------------ #
    def types_of(self, entity_id: str) -> set[str]:
        """Types of an entity (``rdf:type`` objects)."""
        with self._lock:
            return set(self._types.get(entity_id, set()))

    def entities_of_type(self, type_id: str) -> set[str]:
        """All instances of a type."""
        with self._lock:
            return set(self._type_members.get(type_id, set()))

    def types(self) -> set[str]:
        """All entity types used in the graph."""
        with self._lock:
            return set(self._type_members.keys())

    def type_count(self, type_id: str) -> int:
        """Number of instances of a type."""
        return len(self._type_members.get(type_id, set()))

    def type_tables(self) -> tuple[dict[str, set[str]], dict[str, set[str]]]:
        """One consistent ``(entity → types, type → members)`` snapshot.

        The outer dictionaries are copies taken under :attr:`lock`; the
        inner sets are shared by reference and — because type mutations
        are copy-on-write — never change after publication.  This is what
        lets a pinned feature-index snapshot keep the type smoothing of
        *its* epoch while the live graph moves on.
        """
        with self._lock:
            return dict(self._types), dict(self._type_members)

    def dominant_type(self, entity_id: str) -> str:
        """The most specific type of an entity.

        Following the entity-set-expansion papers, the dominant type ``c*``
        of an entity is its *least populated* type — the rarest type is the
        most specific one.  Entities without a type return ``""``.
        """
        with self._lock:
            entity_types = self._types.get(entity_id)
            if not entity_types:
                return ""
            return min(entity_types, key=lambda t: (len(self._type_members[t]), t))

    def labels_of(self, entity_id: str) -> list[str]:
        """Explicit labels of an entity (may be empty)."""
        with self._lock:
            return list(self._labels.get(entity_id, []))

    def label(self, entity_id: str) -> str:
        """Preferred display label, falling back to the identifier."""
        labels = self._labels.get(entity_id)
        if labels:
            return labels[0]
        return label_from_identifier(entity_id)

    def categories_of(self, entity_id: str) -> set[str]:
        """Categories of an entity (``dct:subject`` objects)."""
        with self._lock:
            return set(self._categories.get(entity_id, set()))

    def entities_in_category(self, category: str) -> set[str]:
        """All entities carrying the given category."""
        with self._lock:
            return set(self._category_members.get(category, set()))

    def aliases_of(self, entity_id: str) -> set[str]:
        """Alias entities (redirects/disambiguations) of an entity."""
        with self._lock:
            return set(self._aliases.get(entity_id, set()))

    def attributes_of(self, entity_id: str) -> dict[str, list[str]]:
        """Literal attributes of an entity keyed by predicate.

        Structural literals (labels) are excluded — they are exposed via
        :meth:`labels_of`.
        """
        with self._lock:
            result: dict[str, list[str]] = {}
            for predicate, literals in self._literals.get(entity_id, {}).items():
                if predicate == RDFS_LABEL:
                    continue
                result[predicate] = [lit.value for lit in literals]
            return result

    # ------------------------------------------------------------------ #
    # Entity snapshots
    # ------------------------------------------------------------------ #
    def entity(self, entity_id: str) -> Entity:
        """Build the full :class:`Entity` snapshot for an identifier."""
        self.require_entity(entity_id)
        outgoing = tuple(self.outgoing(entity_id))
        incoming = tuple(self.incoming(entity_id))
        related: list[str] = []
        seen: set[str] = set()
        for _, target in outgoing:
            if target not in seen:
                seen.add(target)
                related.append(target)
        for _, source in incoming:
            if source not in seen:
                seen.add(source)
                related.append(source)
        attributes = {
            predicate: tuple(values)
            for predicate, values in sorted(self.attributes_of(entity_id).items())
        }
        alias_names = tuple(self.label(alias) for alias in sorted(self.aliases_of(entity_id)))
        return Entity(
            identifier=entity_id,
            labels=tuple(self.labels_of(entity_id)),
            types=tuple(sorted(self.types_of(entity_id), key=lambda t: (self.type_count(t), t))),
            categories=tuple(sorted(self.categories_of(entity_id))),
            attributes=attributes,
            aliases=alias_names,
            related=tuple(related),
            outgoing=outgoing,
            incoming=incoming,
        )

    def entity_or_none(self, entity_id: str) -> Entity | None:
        """Like :meth:`entity` but returning ``None`` for unknown identifiers."""
        if entity_id not in self._entities:
            return None
        return self.entity(entity_id)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line description used by logging and the examples."""
        return (
            f"KnowledgeGraph({self.name!r}: {len(self._triples)} triples, "
            f"{len(self._entities)} entities, {len(self._type_members)} types, "
            f"{len(self._pos)} edge predicates)"
        )

    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """Return an independent copy of the graph."""
        clone = KnowledgeGraph(name or self.name, namespaces=self.namespaces)
        clone.add_all(self._triples)
        return clone

    def merge(self, other: "KnowledgeGraph") -> int:
        """Merge another graph into this one; return number of new triples."""
        return self.add_all(other.triples)
