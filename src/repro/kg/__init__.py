"""Knowledge-graph substrate: triples, entities, the indexed store and IO.

This package implements the RDF knowledge graph the paper's system operates
on (``kappa`` in §2.3): a set of ``<s, p, o>`` triples with entity types,
labels, categories, literal attributes and alias (redirect) links, indexed
for the access patterns PivotE needs.
"""

from .builder import GraphBuilder
from .entity import Entity, EntityProfile, build_profile, wikipedia_url
from .graph import KnowledgeGraph, STRUCTURAL_PREDICATES
from .io import (
    graph_from_dict,
    graph_to_dict,
    load_json,
    load_ntriples,
    load_tsv,
    save_json,
    save_ntriples,
    save_tsv,
)
from .namespaces import (
    DCT_SUBJECT,
    DEFAULT_NAMESPACES,
    DISAMBIGUATES,
    NamespaceRegistry,
    RDFS_LABEL,
    RDF_TYPE,
    REDIRECT,
    label_from_identifier,
)
from .paths import (
    Path,
    PathStep,
    bfs_reachable,
    bfs_reachable_scalar,
    connecting_entities,
    connecting_entities_scalar,
    paths_between,
    shortest_path,
)
from .topology import (
    GraphTopology,
    TraversalCounters,
    graph_topology,
    install_topology,
    topology_counters,
    traversal_stats,
)
from .query import Binding, Filter, QueryEngine, SelectQuery, TriplePattern
from .statistics import (
    GraphStatistics,
    TypeCoupling,
    compute_statistics,
    type_couplings,
    type_distribution_of_neighbours,
)
from .triple import Literal, Triple, make_triple

__all__ = [
    "Binding",
    "Filter",
    "QueryEngine",
    "SelectQuery",
    "TriplePattern",
    "DCT_SUBJECT",
    "DEFAULT_NAMESPACES",
    "DISAMBIGUATES",
    "Entity",
    "EntityProfile",
    "GraphBuilder",
    "GraphStatistics",
    "GraphTopology",
    "KnowledgeGraph",
    "Literal",
    "NamespaceRegistry",
    "Path",
    "PathStep",
    "RDF_TYPE",
    "RDFS_LABEL",
    "REDIRECT",
    "STRUCTURAL_PREDICATES",
    "Triple",
    "TraversalCounters",
    "TypeCoupling",
    "bfs_reachable",
    "bfs_reachable_scalar",
    "build_profile",
    "compute_statistics",
    "connecting_entities",
    "connecting_entities_scalar",
    "graph_from_dict",
    "graph_to_dict",
    "graph_topology",
    "install_topology",
    "label_from_identifier",
    "load_json",
    "load_ntriples",
    "load_tsv",
    "make_triple",
    "paths_between",
    "save_json",
    "save_ntriples",
    "save_tsv",
    "shortest_path",
    "topology_counters",
    "traversal_stats",
    "type_couplings",
    "type_distribution_of_neighbours",
    "wikipedia_url",
]
