"""Path utilities over the knowledge graph.

The recommendation model is *path-based*: semantic features are length-one
paths anchored at an entity, and explanations ("Forrest Gump and Apollo 13
are both performed by Tom Hanks") are length-two paths through a shared
anchor.  This module provides the small amount of graph traversal the rest
of the library needs: shortest paths, bounded breadth-first expansion and
connecting-path enumeration between entity pairs.

The two hot traversals — :func:`bfs_reachable` and
:func:`connecting_entities` — route through the per-epoch columnar
:class:`~repro.kg.topology.GraphTopology` by default (frontier-at-a-time
CSR kernels); the original scalar queue walks survive as
:func:`bfs_reachable_scalar` / :func:`connecting_entities_scalar` and
remain the byte-identical A/B arm (``topology=False``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from .graph import KnowledgeGraph
from .topology import graph_topology, topology_counters


@dataclass(frozen=True)
class PathStep:
    """One hop of a path: predicate, direction and the entity reached."""

    predicate: str
    #: ``True`` when the hop follows the edge subject->object.
    forward: bool
    entity: str

    def describe(self) -> str:
        arrow = "->" if self.forward else "<-"
        return f"{arrow}[{self.predicate}]{arrow} {self.entity}"


@dataclass(frozen=True)
class Path:
    """A path through the KG starting at ``start``."""

    start: str
    steps: tuple[PathStep, ...] = ()

    @property
    def end(self) -> str:
        return self.steps[-1].entity if self.steps else self.start

    @property
    def length(self) -> int:
        return len(self.steps)

    def entities(self) -> tuple[str, ...]:
        return (self.start,) + tuple(step.entity for step in self.steps)

    def describe(self) -> str:
        return self.start + " " + " ".join(step.describe() for step in self.steps)


def _expand(graph: KnowledgeGraph, entity: str) -> Iterator[PathStep]:
    """All single hops leaving ``entity`` in both directions."""
    for predicate, target in graph.outgoing(entity):
        yield PathStep(predicate=predicate, forward=True, entity=target)
    for predicate, source in graph.incoming(entity):
        yield PathStep(predicate=predicate, forward=False, entity=source)


def bfs_reachable(
    graph: KnowledgeGraph, start: str, max_hops: int = 2, *, topology: bool = True
) -> dict[str, int]:
    """Entities reachable from ``start`` within ``max_hops``, with distances.

    Runs the frontier-at-a-time columnar kernel by default; pass
    ``topology=False`` for the scalar queue walk (the A/B arm) —
    results are identical either way.
    """
    if not topology:
        return bfs_reachable_scalar(graph, start, max_hops)
    graph.require_entity(start)
    topo = graph_topology(graph)
    counters = topology_counters(graph)
    counters.bfs_queries += 1
    reached, depths = topo.bfs_reachable_ords(topo.ordinal_of[start], max_hops, counters)
    entity_ids = topo.entity_ids
    return {
        entity_ids[ordinal]: depth
        for ordinal, depth in zip(reached.tolist(), depths.tolist())
    }


def bfs_reachable_scalar(graph: KnowledgeGraph, start: str, max_hops: int = 2) -> dict[str, int]:
    """The scalar queue-walk arm of :func:`bfs_reachable`."""
    graph.require_entity(start)
    distances: dict[str, int] = {start: 0}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if depth >= max_hops:
            continue
        for step in _expand(graph, current):
            if step.entity not in distances:
                distances[step.entity] = depth + 1
                frontier.append(step.entity)
    return distances


def shortest_path(graph: KnowledgeGraph, start: str, end: str, max_hops: int = 4) -> Path | None:
    """Breadth-first shortest path between two entities (undirected)."""
    graph.require_entity(start)
    graph.require_entity(end)
    if start == end:
        return Path(start=start)
    parents: dict[str, tuple[str, PathStep]] = {}
    visited: set[str] = {start}
    frontier = deque([(start, 0)])
    while frontier:
        current, depth = frontier.popleft()
        if depth >= max_hops:
            continue
        for step in _expand(graph, current):
            if step.entity in visited:
                continue
            visited.add(step.entity)
            parents[step.entity] = (current, step)
            if step.entity == end:
                return _reconstruct(start, end, parents)
            frontier.append((step.entity, depth + 1))
    return None


def _reconstruct(start: str, end: str, parents: dict[str, tuple[str, PathStep]]) -> Path:
    steps: list[PathStep] = []
    node = end
    while node != start:
        parent, step = parents[node]
        steps.append(step)
        node = parent
    steps.reverse()
    return Path(start=start, steps=tuple(steps))


def connecting_entities(
    graph: KnowledgeGraph, left: str, right: str, *, topology: bool = True
) -> list[tuple[str, str, str]]:
    """Entities that connect ``left`` and ``right`` through length-two paths.

    Returns ``(anchor_entity, predicate_from_left, predicate_from_right)``
    tuples — exactly the evidence the explanation area verbalises ("both are
    performed by Tom Hanks").  Runs the sorted-array intersect kernel by
    default; ``topology=False`` selects the scalar walk (identical output).
    """
    if not topology:
        return connecting_entities_scalar(graph, left, right)
    graph.require_entity(left)
    graph.require_entity(right)
    topo = graph_topology(graph)
    counters = topology_counters(graph)
    counters.connect_queries += 1
    anchors, left_preds, right_preds = topo.connecting_ords(
        topo.ordinal_of[left], topo.ordinal_of[right], counters
    )
    entity_ids = topo.entity_ids
    predicates = topo.predicates
    # Ordinals are assigned in string-sorted order, so the kernel's
    # lexsort already equals the scalar walk's final tuple sort.
    return [
        (entity_ids[anchor], predicates[left_pred], predicates[right_pred])
        for anchor, left_pred, right_pred in zip(
            anchors.tolist(), left_preds.tolist(), right_preds.tolist()
        )
    ]


def connecting_entities_scalar(
    graph: KnowledgeGraph, left: str, right: str
) -> list[tuple[str, str, str]]:
    """The scalar-walk arm of :func:`connecting_entities`."""
    graph.require_entity(left)
    graph.require_entity(right)
    left_anchors: dict[str, set[str]] = {}
    for step in _expand(graph, left):
        left_anchors.setdefault(step.entity, set()).add(step.predicate)
    results: list[tuple[str, str, str]] = []
    for step in _expand(graph, right):
        if step.entity in left_anchors and step.entity not in (left, right):
            for left_predicate in sorted(left_anchors[step.entity]):
                results.append((step.entity, left_predicate, step.predicate))
    results.sort()
    return results


def paths_between(
    graph: KnowledgeGraph,
    start: str,
    end: str,
    max_hops: int = 2,
    limit: int = 100,
) -> list[Path]:
    """Enumerate simple paths of length <= ``max_hops`` between two entities."""
    graph.require_entity(start)
    graph.require_entity(end)
    results: list[Path] = []

    def recurse(current: str, steps: list[PathStep], visited: set[str]) -> None:
        if len(results) >= limit:
            return
        if current == end and steps:
            results.append(Path(start=start, steps=tuple(steps)))
            return
        if len(steps) >= max_hops:
            return
        for step in _expand(graph, current):
            if step.entity in visited and step.entity != end:
                continue
            steps.append(step)
            visited.add(step.entity)
            recurse(step.entity, steps, visited)
            visited.discard(step.entity)
            steps.pop()

    recurse(start, [], {start})
    return results
