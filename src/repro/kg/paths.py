"""Path utilities over the knowledge graph.

The recommendation model is *path-based*: semantic features are length-one
paths anchored at an entity, and explanations ("Forrest Gump and Apollo 13
are both performed by Tom Hanks") are length-two paths through a shared
anchor.  This module provides the small amount of graph traversal the rest
of the library needs: shortest paths, bounded breadth-first expansion and
connecting-path enumeration between entity pairs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from .graph import KnowledgeGraph


@dataclass(frozen=True)
class PathStep:
    """One hop of a path: predicate, direction and the entity reached."""

    predicate: str
    #: ``True`` when the hop follows the edge subject->object.
    forward: bool
    entity: str

    def describe(self) -> str:
        arrow = "->" if self.forward else "<-"
        return f"{arrow}[{self.predicate}]{arrow} {self.entity}"


@dataclass(frozen=True)
class Path:
    """A path through the KG starting at ``start``."""

    start: str
    steps: tuple[PathStep, ...] = ()

    @property
    def end(self) -> str:
        return self.steps[-1].entity if self.steps else self.start

    @property
    def length(self) -> int:
        return len(self.steps)

    def entities(self) -> tuple[str, ...]:
        return (self.start,) + tuple(step.entity for step in self.steps)

    def describe(self) -> str:
        return self.start + " " + " ".join(step.describe() for step in self.steps)


def _expand(graph: KnowledgeGraph, entity: str) -> Iterator[PathStep]:
    """All single hops leaving ``entity`` in both directions."""
    for predicate, target in graph.outgoing(entity):
        yield PathStep(predicate=predicate, forward=True, entity=target)
    for predicate, source in graph.incoming(entity):
        yield PathStep(predicate=predicate, forward=False, entity=source)


def bfs_reachable(graph: KnowledgeGraph, start: str, max_hops: int = 2) -> dict[str, int]:
    """Entities reachable from ``start`` within ``max_hops``, with distances."""
    graph.require_entity(start)
    distances: dict[str, int] = {start: 0}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if depth >= max_hops:
            continue
        for step in _expand(graph, current):
            if step.entity not in distances:
                distances[step.entity] = depth + 1
                frontier.append(step.entity)
    return distances


def shortest_path(graph: KnowledgeGraph, start: str, end: str, max_hops: int = 4) -> Path | None:
    """Breadth-first shortest path between two entities (undirected)."""
    graph.require_entity(start)
    graph.require_entity(end)
    if start == end:
        return Path(start=start)
    parents: dict[str, tuple[str, PathStep]] = {}
    visited: set[str] = {start}
    frontier = deque([(start, 0)])
    while frontier:
        current, depth = frontier.popleft()
        if depth >= max_hops:
            continue
        for step in _expand(graph, current):
            if step.entity in visited:
                continue
            visited.add(step.entity)
            parents[step.entity] = (current, step)
            if step.entity == end:
                return _reconstruct(start, end, parents)
            frontier.append((step.entity, depth + 1))
    return None


def _reconstruct(start: str, end: str, parents: dict[str, tuple[str, PathStep]]) -> Path:
    steps: list[PathStep] = []
    node = end
    while node != start:
        parent, step = parents[node]
        steps.append(step)
        node = parent
    steps.reverse()
    return Path(start=start, steps=tuple(steps))


def connecting_entities(graph: KnowledgeGraph, left: str, right: str) -> list[tuple[str, str, str]]:
    """Entities that connect ``left`` and ``right`` through length-two paths.

    Returns ``(anchor_entity, predicate_from_left, predicate_from_right)``
    tuples — exactly the evidence the explanation area verbalises ("both are
    performed by Tom Hanks").
    """
    graph.require_entity(left)
    graph.require_entity(right)
    left_anchors: dict[str, set[str]] = {}
    for step in _expand(graph, left):
        left_anchors.setdefault(step.entity, set()).add(step.predicate)
    results: list[tuple[str, str, str]] = []
    for step in _expand(graph, right):
        if step.entity in left_anchors and step.entity not in (left, right):
            for left_predicate in sorted(left_anchors[step.entity]):
                results.append((step.entity, left_predicate, step.predicate))
    results.sort()
    return results


def paths_between(
    graph: KnowledgeGraph,
    start: str,
    end: str,
    max_hops: int = 2,
    limit: int = 100,
) -> list[Path]:
    """Enumerate simple paths of length <= ``max_hops`` between two entities."""
    graph.require_entity(start)
    graph.require_entity(end)
    results: list[Path] = []

    def recurse(current: str, steps: list[PathStep], visited: set[str]) -> None:
        if len(results) >= limit:
            return
        if current == end and steps:
            results.append(Path(start=start, steps=tuple(steps)))
            return
        if len(steps) >= max_hops:
            return
        for step in _expand(graph, current):
            if step.entity in visited and step.entity != end:
                continue
            steps.append(step)
            visited.add(step.entity)
            recurse(step.entity, steps, visited)
            visited.discard(step.entity)
            steps.pop()

    recurse(start, [], {start})
    return results
