"""Serialization of knowledge graphs.

Three formats are supported:

* a simplified **N-Triples** dialect (one ``<s> <p> <o> .`` statement per
  line, CURIEs allowed) — the format DBpedia dumps come in;
* a **TSV** format (``subject<TAB>predicate<TAB>object<TAB>kind``) that is
  convenient to inspect and diff;
* a **JSON** document grouping triples per subject, used by the examples to
  snapshot small graphs.

All loaders are forgiving about blank lines and ``#`` comments.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..exceptions import GraphIOError
from .graph import KnowledgeGraph
from .triple import Literal, Triple

_PathLike = str | Path

_NT_PATTERN = re.compile(
    r"""^\s*
        (?:<(?P<s_iri>[^>]+)>|(?P<s_curie>\S+))\s+
        (?:<(?P<p_iri>[^>]+)>|(?P<p_curie>\S+))\s+
        (?:<(?P<o_iri>[^>]+)>|"(?P<o_lit>(?:[^"\\]|\\.)*)"(?:@(?P<lang>[A-Za-z-]+))?|(?P<o_curie>\S+))
        \s*\.\s*$""",
    re.VERBOSE,
)


def _unescape(value: str) -> str:
    return value.replace('\\"', '"').replace("\\\\", "\\")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def parse_ntriples_line(line: str) -> Triple | None:
    """Parse a single N-Triples statement; return ``None`` for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    match = _NT_PATTERN.match(stripped)
    if match is None:
        raise GraphIOError(f"malformed N-Triples line: {line!r}")
    subject = match.group("s_iri") or match.group("s_curie")
    predicate = match.group("p_iri") or match.group("p_curie")
    if match.group("o_lit") is not None:
        obj: str | Literal = Literal(
            _unescape(match.group("o_lit")), language=match.group("lang") or ""
        )
    else:
        obj = match.group("o_iri") or match.group("o_curie")
    return Triple(subject, predicate, obj)


def iter_ntriples(lines: Iterable[str]) -> Iterator[Triple]:
    """Yield triples from an iterable of N-Triples lines."""
    for number, line in enumerate(lines, start=1):
        try:
            triple = parse_ntriples_line(line)
        except GraphIOError as exc:
            raise GraphIOError(f"line {number}: {exc}") from exc
        if triple is not None:
            yield triple


def load_ntriples(path: _PathLike, name: str | None = None) -> KnowledgeGraph:
    """Load a knowledge graph from an N-Triples file."""
    path = Path(path)
    graph = KnowledgeGraph(name or path.stem)
    try:
        with path.open("r", encoding="utf-8") as handle:
            graph.add_all(iter_ntriples(handle))
    except OSError as exc:
        raise GraphIOError(f"cannot read {path}: {exc}") from exc
    return graph


def triple_to_ntriples(triple: Triple) -> str:
    """Serialize one triple as an N-Triples statement (CURIEs kept as-is)."""
    if triple.is_literal:
        literal = triple.object
        assert isinstance(literal, Literal)
        lang = f"@{literal.language}" if literal.language else ""
        return f'{triple.subject} {triple.predicate} "{_escape(literal.value)}"{lang} .'
    return f"{triple.subject} {triple.predicate} {triple.object} ."


def save_ntriples(graph: KnowledgeGraph, path: _PathLike) -> None:
    """Write a knowledge graph to an N-Triples file."""
    path = Path(path)
    try:
        with path.open("w", encoding="utf-8") as handle:
            for triple in graph.triples:
                handle.write(triple_to_ntriples(triple) + "\n")
    except OSError as exc:
        raise GraphIOError(f"cannot write {path}: {exc}") from exc


def load_tsv(path: _PathLike, name: str | None = None) -> KnowledgeGraph:
    """Load a graph from the TSV format produced by :func:`save_tsv`."""
    path = Path(path)
    graph = KnowledgeGraph(name or path.stem)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                stripped = line.rstrip("\n")
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split("\t")
                if len(parts) not in (3, 4):
                    raise GraphIOError(f"line {number}: expected 3 or 4 columns, got {len(parts)}")
                subject, predicate, obj = parts[0], parts[1], parts[2]
                kind = parts[3] if len(parts) == 4 else "entity"
                if kind == "literal":
                    graph.add(subject, predicate, Literal(obj))
                else:
                    graph.add(subject, predicate, obj)
    except OSError as exc:
        raise GraphIOError(f"cannot read {path}: {exc}") from exc
    return graph


def save_tsv(graph: KnowledgeGraph, path: _PathLike) -> None:
    """Write a graph as TSV (``subject  predicate  object  kind``)."""
    path = Path(path)
    try:
        with path.open("w", encoding="utf-8") as handle:
            for triple in graph.triples:
                kind = "literal" if triple.is_literal else "entity"
                handle.write(
                    f"{triple.subject}\t{triple.predicate}\t{triple.object_value}\t{kind}\n"
                )
    except OSError as exc:
        raise GraphIOError(f"cannot write {path}: {exc}") from exc


def graph_to_dict(graph: KnowledgeGraph) -> dict:
    """Serialize a graph to a JSON-compatible dictionary grouped by subject."""
    subjects: dict[str, list[dict]] = {}
    for triple in graph.triples:
        record = {
            "predicate": triple.predicate,
            "object": triple.object_value,
            "literal": triple.is_literal,
        }
        subjects.setdefault(triple.subject, []).append(record)
    return {"name": graph.name, "subjects": subjects}


def graph_from_dict(payload: dict) -> KnowledgeGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if "subjects" not in payload:
        raise GraphIOError("missing 'subjects' key in graph document")
    graph = KnowledgeGraph(payload.get("name", "kg"))
    for subject, records in payload["subjects"].items():
        for record in records:
            obj: str | Literal
            if record.get("literal"):
                obj = Literal(record["object"])
            else:
                obj = record["object"]
            graph.add(subject, record["predicate"], obj)
    return graph


def save_json(graph: KnowledgeGraph, path: _PathLike) -> None:
    """Write a graph as a JSON document."""
    path = Path(path)
    try:
        path.write_text(json.dumps(graph_to_dict(graph), indent=2), encoding="utf-8")
    except OSError as exc:
        raise GraphIOError(f"cannot write {path}: {exc}") from exc


def load_json(path: _PathLike) -> KnowledgeGraph:
    """Load a graph from a JSON document produced by :func:`save_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphIOError(f"cannot read {path}: {exc}") from exc
    return graph_from_dict(payload)
