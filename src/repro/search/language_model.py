"""Query-likelihood language models with smoothing.

The search engine scores an entity document by the probability that its
(field) language model generates the query terms [Ponte & Croft 1998].  Two
standard smoothing strategies are provided:

* **Dirichlet**: ``p(t|d) = (tf + mu * p(t|C)) / (|d| + mu)``
* **Jelinek-Mercer**: ``p(t|d) = (1 - lambda) * tf/|d| + lambda * p(t|C)``

Both return genuine probabilities (never zero as long as the collection
probability is positive), which the mixture model of :mod:`repro.search.mlm`
then combines across fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SmoothingParams:
    """Parameters of the smoothing strategies."""

    method: str = "dirichlet"
    dirichlet_mu: float = 100.0
    jm_lambda: float = 0.1

    def __post_init__(self) -> None:
        if self.method not in ("dirichlet", "jelinek-mercer"):
            raise ValueError(f"unknown smoothing method: {self.method!r}")
        if self.dirichlet_mu <= 0:
            raise ValueError("dirichlet_mu must be positive")
        if not 0.0 <= self.jm_lambda <= 1.0:
            raise ValueError("jm_lambda must lie in [0, 1]")


def dirichlet_probability(
    term_frequency: int,
    document_length: int,
    collection_probability: float,
    mu: float,
) -> float:
    """Dirichlet-smoothed ``p(term | document)``."""
    if mu <= 0:
        raise ValueError("mu must be positive")
    numerator = term_frequency + mu * collection_probability
    denominator = document_length + mu
    if denominator == 0:
        return 0.0
    return numerator / denominator


def jelinek_mercer_probability(
    term_frequency: int,
    document_length: int,
    collection_probability: float,
    lam: float,
) -> float:
    """Jelinek-Mercer-smoothed ``p(term | document)``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must lie in [0, 1]")
    if document_length > 0:
        maximum_likelihood = term_frequency / document_length
    else:
        maximum_likelihood = 0.0
    return (1.0 - lam) * maximum_likelihood + lam * collection_probability


def smoothed_probability(
    term_frequency: int,
    document_length: int,
    collection_probability: float,
    params: SmoothingParams,
) -> float:
    """Dispatch to the configured smoothing strategy."""
    if params.method == "dirichlet":
        return dirichlet_probability(
            term_frequency, document_length, collection_probability, params.dirichlet_mu
        )
    return jelinek_mercer_probability(
        term_frequency, document_length, collection_probability, params.jm_lambda
    )


def log_probability(probability: float, floor: float = 1e-12) -> float:
    """Safe log of a probability, flooring at ``floor`` to avoid -inf."""
    return math.log(max(probability, floor))
