"""BM25 and BM25F baselines for entity retrieval.

The paper's search engine uses a mixture of language models; BM25(F) is the
standard lexical alternative and serves as the comparison point of the E7
search-quality experiment.

Like the language-model scorers, retrieval runs term-at-a-time over the
postings with per-(field, term) statistics resolved once per term and a
bounded-heap top-k; the score-all path remains as ``search_exhaustive``.
Because BM25 gives documents without any matching term a score of exactly
``0.0``, the accumulator only ever visits postings — candidates that match
solely in unscored fields are appended as a zero-scored, doc-id-ordered
tail to match the exhaustive ranking byte-for-byte.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..config import EXECUTOR_CHOICES, PRUNED_MODES, PRUNING_MODES
from ..exec import (
    ProcessTask,
    ThetaSlab,
    default_executor,
    merge_shard_maps,
    merge_shard_stats,
    resolve_executor,
    shard_stats_from,
    snapshot_registry,
    split_frequencies,
)
from ..index import (
    BLOCK_SIZE,
    CollectionStatistics,
    ColumnarIndex,
    FieldedIndex,
    columnar_view,
    select_top_k_with_zero_fill,
)
from ..topk import (
    BlockedSparseTermEntry,
    PruningStats,
    SharedThreshold,
    SparseKernelTerm,
    SparseTermEntry,
    accumulate_sparse,
    columnar_sparse,
    maxscore_sparse,
    select_survivor_ordinals,
    select_survivors,
)
from .mlm import ScoredDocument
from .query import KeywordQuery


def _shard_postings(
    statistics: CollectionStatistics,
    field: str,
    term: str,
    frequencies: Mapping[str, int],
    num_shards: int,
) -> tuple[dict[str, int], ...]:
    """The term's postings split into per-shard sub-maps, memoised per epoch.

    The split is scorer-independent (pure CRC routing over the doc ids),
    so BM25 and BM25F scorers over the same index share one split per
    (field, term, shard count) — the same amortisation contract as the
    block summaries.
    """
    maps = statistics.memoised_blocks(
        ("shard-split", field, term, num_shards),
        lambda: tuple(split_frequencies(frequencies, num_shards)),
    )
    assert isinstance(maps, tuple)
    return maps


def _sharded_sparse_survivors(
    entries_of,
    num_shards: int,
    top_k: int,
    stats: PruningStats,
    blockmax: bool,
    executor=None,
) -> list[str]:
    """Fan the sparse driver out over postings shards; union the picks.

    ``entries_of(shard)`` builds the shard's entry list (walking that
    shard's postings sub-maps).  Workers run with private
    :class:`PruningStats` (merged afterwards, the logical query counted
    once) and the cross-shard θ broadcast.  Sparse survivors always hold
    *exact* totals (every surviving accumulator saw every term, expanded
    or refined), so the disjoint per-shard maps merge into exactly the
    accumulator map the serial traversal would keep, and one global
    margin-guarded selection — the serial epilogue — picks the ids the
    caller re-scores.
    """
    shared = SharedThreshold(top_k)

    def worker(shard: int) -> tuple[dict[str, float], PruningStats]:
        local = PruningStats()
        survivors = maxscore_sparse(
            entries_of(shard), top_k, local, blockmax=blockmax, shared=shared.slot()
        )
        return survivors, local

    results = (executor or default_executor()).run(
        [lambda shard=shard: worker(shard) for shard in range(num_shards)]
    )
    merge_shard_stats(stats, [local for _, local in results])
    return select_survivors(
        merge_shard_maps(survivors for survivors, _ in results), top_k
    )


def _field_norms(view: ColumnarIndex, field: str, b: float, avg_length: float) -> np.ndarray:
    """Per-ordinal BM25 length normalisers for one field, memoised per epoch.

    The array counterpart of the scalar ``1.0 - b + b * (doc_len / avg)``
    expression (``1.0`` everywhere when the average is degenerate).  The
    key carries the scorer's construction-time average-length snapshot,
    so BM25 and BM25F scorers over the same field share one column only
    when their snapshots agree.
    """

    def compute() -> np.ndarray:
        if avg_length <= 0:
            return np.ones(view.num_documents, dtype=np.float64)
        lengths = view.field_lengths(field)
        return (1.0 - b) + b * (lengths / avg_length)

    norms = view.memoised(("bm25-norms", b, avg_length, field), compute)
    assert isinstance(norms, np.ndarray)
    return norms


def _shard_sliced_terms(
    terms: list[SparseKernelTerm], owners: np.ndarray, num_shards: int
) -> list[list[SparseKernelTerm]]:
    """Each term's posting column sliced by the CRC ownership map.

    Upper bounds and block grids stay derived from the full column — a
    full-list bound is sound for any subset — and terms without postings
    in a shard contribute no entry there, which only tightens the
    shard's remaining-upper sums.  The worker processes apply the same
    cut against their snapshot columns (see
    :func:`repro.exec.procpool._slice_for_shard`).
    """
    shard_terms: list[list[SparseKernelTerm]] = [[] for _ in range(num_shards)]
    for entry in terms:
        owner = owners[entry.ordinals]
        for shard in range(num_shards):
            mask = owner == shard
            if not mask.any():
                continue  # no postings here: tightens the shard's upper sums
            shard_terms[shard].append(
                SparseKernelTerm(
                    key=entry.key,
                    upper=entry.upper,
                    ordinals=entry.ordinals[mask],
                    contributions=entry.contributions[mask],
                    block_last_ordinals=entry.block_last_ordinals,
                    block_uppers=entry.block_uppers,
                )
            )
    return shard_terms


def _process_columnar_sparse_survivors(
    view: ColumnarIndex,
    terms: list[SparseKernelTerm],
    num_shards: int,
    top_k: int,
    stats: PruningStats,
    blockmax: bool,
    executor,
    plan: dict,
) -> np.ndarray | None:
    """Dispatch the sparse shard fan-out to the multiprocess tier.

    One task per shard: the parent runs shard 0 inline (its fallback
    holds a slot on the shared θ slab), the remaining shards ship only
    the scorer's term recipes — each worker rebuilds the full posting
    columns from its snapshot and applies its own ownership cut.
    Returns ``None`` when the snapshot cannot be published, so the
    caller falls through to the thread/inline fan-out.
    """
    if num_shards < 2:
        return None
    snapshot = snapshot_registry().publish(plan["index"], view)
    if snapshot is None:
        return None
    owners = view.shard_map(num_shards)
    shard_terms = _shard_sliced_terms(terms, owners, num_shards)
    slab = ThetaSlab.create(top_k, num_shards)
    try:
        tasks = []
        for shard in range(num_shards):
            payload = {
                "kind": plan["kind"],
                "snapshot": snapshot.descriptor,
                "theta": slab.descriptor,
                "slot": shard,
                "top_k": top_k,
                "blockmax": blockmax,
                "num_shards": num_shards,
                "shard": shard,
                **plan["recipe"],
            }

            def fallback(shard=shard):
                local = PruningStats()
                ordinals, partials = columnar_sparse(
                    shard_terms[shard],
                    top_k,
                    local,
                    view.num_documents,
                    blockmax=blockmax,
                    shared=slab.slot(shard),
                )
                return ordinals, partials, local

            tasks.append(ProcessTask(payload, fallback))
        results = executor.run_tasks(tasks)
    finally:
        slab.close()
    merge_shard_stats(stats, [shard_stats_from(counters) for _, _, counters in results])
    all_ordinals = np.concatenate([ordinals for ordinals, _, _ in results])
    all_partials = np.concatenate([partials for _, partials, _ in results])
    return select_survivor_ordinals(all_ordinals, all_partials, top_k)


def _sharded_columnar_sparse_survivors(
    view: ColumnarIndex,
    terms: list[SparseKernelTerm],
    num_shards: int,
    top_k: int,
    stats: PruningStats,
    blockmax: bool,
    executor=None,
    process_plan: dict | None = None,
) -> np.ndarray:
    """Fan the sparse kernel out over ordinal shards; union the picks.

    Each term's posting column is sliced by the view's CRC ownership map
    (the exact split the scalar ``_shard_postings`` memo produces), while
    upper bounds and block grids stay derived from the full column — a
    full-list bound is sound for any subset.  Workers run with private
    :class:`PruningStats` (merged afterwards, the logical query counted
    once) and the cross-shard θ broadcast; the disjoint survivor columns
    concatenate into exactly the survivor set a serial traversal would
    keep, and one global margin-guarded selection picks the ordinals the
    caller re-scores.  With a process executor and a recipe plan the
    fan-out goes to the multiprocess tier first (falling back here if
    the snapshot cannot be served); either tier feeds the same global
    selection, so rankings stay byte-identical across executors.
    """
    executor = executor or default_executor()
    if process_plan is not None and getattr(executor, "is_process", False):
        picked = _process_columnar_sparse_survivors(
            view, terms, num_shards, top_k, stats, blockmax, executor, process_plan
        )
        if picked is not None:
            return picked
    owners = view.shard_map(num_shards)
    shard_terms = _shard_sliced_terms(terms, owners, num_shards)
    shared = SharedThreshold(top_k)

    def worker(shard: int) -> tuple[np.ndarray, np.ndarray, PruningStats]:
        local = PruningStats()
        ordinals, partials = columnar_sparse(
            shard_terms[shard],
            top_k,
            local,
            view.num_documents,
            blockmax=blockmax,
            shared=shared.slot(),
        )
        return ordinals, partials, local

    results = executor.run(
        [lambda shard=shard: worker(shard) for shard in range(num_shards)]
    )
    merge_shard_stats(stats, [local for _, _, local in results])
    all_ordinals = np.concatenate([ordinals for ordinals, _, _ in results])
    all_partials = np.concatenate([partials for _, partials, _ in results])
    return select_survivor_ordinals(all_ordinals, all_partials, top_k)


@dataclass(frozen=True)
class BM25Params:
    """BM25 hyper-parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


def idf(num_documents: int, document_frequency: int) -> float:
    """Robertson-Sparck-Jones IDF with the +0.5 correction (never negative)."""
    numerator = num_documents - document_frequency + 0.5
    denominator = document_frequency + 0.5
    return max(0.0, math.log(1.0 + numerator / denominator))


def _extend_with_zero_tail(top, top_k, index, query, score_document):
    """Fill a short pruned top list with the zero-scored candidate tail.

    Reproduces :func:`repro.index.select_top_k_with_zero_fill`'s semantics
    for the pruned paths: when fewer matching documents than ``top_k``
    exist, the exhaustive ranking continues with the remaining candidates
    at score ``0.0`` ordered by document id.
    """
    missing = top_k - len(top)
    if missing <= 0:
        return top
    scored = {result.doc_id for result in top}
    candidates = index.candidate_documents(query.all_terms())
    zeros = sorted(doc_id for doc_id in candidates if doc_id not in scored)
    top.extend(score_document(query, doc_id) for doc_id in zeros[:missing])
    return top


class BM25FieldScorer:
    """Plain BM25 over a single field of a fielded index."""

    def __init__(
        self,
        index: FieldedIndex,
        field: str,
        params: BM25Params | None = None,
        pruning: str = "maxscore",
        shards: int = 1,
        columnar: bool = True,
        executor: str = "auto",
        workers: int = 0,
    ) -> None:
        if pruning not in PRUNING_MODES:
            raise ValueError(f"unknown pruning mode: {pruning!r}")
        if shards < 1:
            raise ValueError("shards must be positive")
        if executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor: {executor!r}")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self._index = index
        self._field = field
        self._params = params or BM25Params()
        self._pruning = pruning
        self._shards = shards
        self._columnar = columnar
        self._executor_mode = executor
        self._workers = workers
        self._pruning_stats = PruningStats()
        field_index = index.field_index(field)
        self._avg_length = field_index.average_document_length
        self._num_documents = field_index.num_documents

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the construction knobs."""
        return resolve_executor(self._executor_mode, self._workers)

    def _process_plan(self, query: KeywordQuery) -> dict:
        """This query's picklable recipe bundle for the process tier.

        Only scalars travel: per-term idf weights and memoised upper
        bounds plus the scorer's normaliser snapshot, from which a
        worker rebuilds the exact contribution columns against its
        snapshot views (see :func:`repro.exec.procpool._bm25_entries`).
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        k1_plus_1 = params.k1 + 1
        min_norm = self._min_length_norm()
        terms = []
        for term in query.all_terms():
            frequencies = support.postings_frequencies(self._field, term)
            if not frequencies:
                continue
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail

            def tf_part(term: str = term) -> float:
                max_tf = statistics.field(self._field).max_frequency(term)
                return (max_tf * k1_plus_1) / (max_tf + params.k1 * min_norm)

            upper = weight * statistics.memoised_bound(
                ("bm25", params.k1, params.b, self._avg_length, self._field, term), tf_part
            )
            terms.append({"term": term, "weight": weight, "upper": upper})
        return {
            "index": self._index,
            "kind": "bm25",
            "recipe": {
                "field": self._field,
                "k1": params.k1,
                "b": params.b,
                "avg_length": self._avg_length,
                "min_norm": min_norm,
                "terms": terms,
            },
        }

    def _min_length_norm(self) -> float:
        """Smallest possible BM25 length normaliser over the collection."""
        params = self._params
        if self._avg_length <= 0:
            return 1.0
        min_length = self._index.statistics().field(self._field).min_length
        return 1.0 - params.b + params.b * (min_length / self._avg_length)

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        params = self._params
        doc_len = self._index.document_length(self._field, doc_id)
        length_norm = 1.0 - params.b + params.b * (
            doc_len / self._avg_length if self._avg_length > 0 else 1.0
        )
        score = 0.0
        term_scores: dict[str, float] = {}
        for term in query.all_terms():
            tf = self._index.term_frequency(self._field, term, doc_id)
            if tf == 0:
                term_scores[term] = 0.0
                continue
            df = self._index.document_frequency(self._field, term)
            weight = idf(self._num_documents, df)
            contribution = weight * (tf * (params.k1 + 1)) / (tf + params.k1 * length_norm)
            term_scores[term] = contribution
            score += contribution
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int = 20) -> list[ScoredDocument]:
        """Term-at-a-time BM25 ranking over the field's postings.

        With ``pruning="maxscore"`` the traversal runs threshold-pruned:
        terms are processed in decreasing upper-bound order, and once the
        remaining terms cannot lift a new document past the live θ the
        walk switches to accumulator-only refinement (the OR→AND switch),
        skipping the postings walks of frequent low-impact terms.
        ``pruning="blockmax"`` additionally attaches per-range (block-max)
        contribution bounds, so the AND phase runs as a doc-id-sorted
        galloping intersection that evicts survivors and skips whole
        posting blocks the list-wide bound cannot.
        """
        if self._pruning in PRUNED_MODES:
            return self._search_maxscore(query, top_k)
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        if self._columnar:
            # Unpruned columnar arm: one scatter-add over every term's
            # posting column, margin-guarded selection, then the exact
            # scalar re-scoring pass (the kernel values only guide
            # selection, so the ranking stays byte-identical).  The
            # accumulation is already one vectorized sweep, so the
            # unpruned shard fan-out is not replicated here.
            view = columnar_view(self._index)
            ordinals, partials = accumulate_sparse(
                self._columnar_sparse_terms(query, view), view.num_documents
            )
            picked = select_survivor_ordinals(ordinals, partials, top_k)
            return self._rescore_and_rank(query, top_k, view.ids_of(picked))
        if self._shards > 1:
            # Unpruned fan-out: each shard accumulates over its own
            # postings sub-maps with the identical arithmetic, so the
            # merged (disjoint) maps hold exactly the serial values.
            accumulators = merge_shard_maps(
                self._executor().run(
                    [
                        lambda shard=shard: self._accumulate_plain(query, shard=shard)
                        for shard in range(self._shards)
                    ]
                )
            )
        else:
            accumulators = self._accumulate_plain(query)
        top = select_top_k_with_zero_fill(accumulators, candidates, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def _accumulate_plain(self, query: KeywordQuery, shard: int | None = None) -> dict[str, float]:
        """Plain term-at-a-time accumulation, optionally over one shard."""
        support = self._index.scoring_support()
        params = self._params
        k1_plus_1 = params.k1 + 1
        lengths = support.field_lengths(self._field)
        accumulators: dict[str, float] = {}
        for term in query.all_terms():
            frequencies = support.postings_frequencies(self._field, term)
            if not frequencies:
                continue
            # IDF from the construction-time document count, like
            # score_document: this scorer snapshots N and avg_length when
            # built, and both paths must agree even after index mutations.
            # In shard mode the idf still weights by the *full* document
            # frequency — the shard split only restricts the traversal.
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                # Zero contribution for every posting (possible when the
                # index grew past the snapshot N): leave these documents to
                # the zero-scored tail so ties keep the global doc_id order.
                continue
            if shard is not None:
                frequencies = _shard_postings(
                    support.statistics, self._field, term, frequencies, self._shards
                )[shard]
            for doc_id, tf in frequencies.items():
                doc_len = lengths.get(doc_id, 0)
                length_norm = 1.0 - params.b + params.b * (
                    doc_len / self._avg_length if self._avg_length > 0 else 1.0
                )
                contribution = weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)
                accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution
        return accumulators

    def _sparse_entries(
        self, query: KeywordQuery, shard: int | None = None
    ) -> list[SparseTermEntry]:
        """One pruning entry per matching query term, bounds memoised.

        With ``shard`` set, the expand/refine walks run over the term's
        per-shard postings sub-map (memoised next to the bounds) while
        idf weights, contribution bounds and block summaries stay derived
        from the full list — a full-list bound is sound for any subset,
        and the shared grids keep the memo footprint shard-independent.
        Terms without postings in the shard contribute no entry, which
        only tightens the shard's remaining-upper sums.
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        k1_plus_1 = params.k1 + 1
        lengths = support.field_lengths(self._field)
        avg_length = self._avg_length
        min_norm = self._min_length_norm()
        entries: list[SparseTermEntry] = []
        for term in query.all_terms():
            frequencies = support.postings_frequencies(self._field, term)
            if not frequencies:
                continue
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail
            full_frequencies = frequencies
            if shard is not None:
                frequencies = _shard_postings(
                    statistics, self._field, term, full_frequencies, self._shards
                )[shard]
                if not frequencies:
                    continue

            def tf_part(term: str = term) -> float:
                max_tf = statistics.field(self._field).max_frequency(term)
                return (max_tf * k1_plus_1) / (max_tf + params.k1 * min_norm)

            upper = weight * statistics.memoised_bound(
                ("bm25", params.k1, params.b, avg_length, self._field, term), tf_part
            )

            def expand(
                accumulators: dict[str, float],
                weight: float = weight,
                frequencies: Mapping[str, int] = frequencies,
            ) -> None:
                for doc_id, tf in frequencies.items():
                    doc_len = lengths.get(doc_id, 0)
                    length_norm = 1.0 - params.b + params.b * (
                        doc_len / avg_length if avg_length > 0 else 1.0
                    )
                    contribution = weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)
                    accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution

            def refine(
                accumulators: dict[str, float],
                weight: float = weight,
                frequencies: Mapping[str, int] = frequencies,
            ) -> None:
                for doc_id in accumulators:
                    tf = frequencies.get(doc_id, 0)
                    if tf == 0:
                        continue
                    doc_len = lengths.get(doc_id, 0)
                    length_norm = 1.0 - params.b + params.b * (
                        doc_len / avg_length if avg_length > 0 else 1.0
                    )
                    contribution = weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)
                    accumulators[doc_id] += contribution

            if self._pruning != "blockmax":
                entries.append(
                    SparseTermEntry(key=term, upper=upper, expand=expand, refine=refine)
                )
                continue

            def block_tf_parts(term: str = term) -> tuple:
                summary = support.postings_block_summary(self._field, term)
                assert summary is not None  # frequencies is non-empty
                parts = tuple(
                    (max_tf * k1_plus_1) / (max_tf + params.k1 * min_norm)
                    for max_tf in summary.max_frequencies
                )
                return (summary.lasts, parts)

            # Same snapshot caveat as the global bound: the per-block
            # parts normalise with this scorer's construction-time
            # averages, so the memo key carries them — and, like the
            # global bound, the idf weight (which depends on the
            # construction-time N) multiplies *outside* the memo, so
            # scorers built at different index epochs never share a
            # weight-scaled value.
            lasts, tf_parts = statistics.memoised_blocks(
                ("bm25-blocks", params.k1, params.b, avg_length, self._field, term, BLOCK_SIZE),
                block_tf_parts,
            )
            block_uppers = tuple(weight * part for part in tf_parts)

            def contribution(
                doc_id: str,
                weight: float = weight,
                frequencies: Mapping[str, int] = frequencies,
            ) -> float:
                tf = frequencies.get(doc_id, 0)
                if tf == 0:
                    return 0.0
                doc_len = lengths.get(doc_id, 0)
                length_norm = 1.0 - params.b + params.b * (
                    doc_len / avg_length if avg_length > 0 else 1.0
                )
                return weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)

            entries.append(
                BlockedSparseTermEntry(
                    key=term,
                    upper=upper,
                    expand=expand,
                    refine=refine,
                    block_lasts=lasts,
                    block_uppers=block_uppers,
                    contribution=contribution,
                )
            )
        return entries

    def _columnar_sparse_terms(
        self, query: KeywordQuery, view: ColumnarIndex
    ) -> list[SparseKernelTerm]:
        """One kernel term per matching query term, columns memoised.

        The contribution column holds the same per-posting arithmetic as
        the scalar expand/refine closures (values only guide selection:
        the survivor re-scoring pass recomputes them with the scalar
        operation order); the upper bound reuses the scalar memoised
        bound verbatim, and the block arrays bound the identical
        ``BLOCK_SIZE`` grid as the scalar block summaries.
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        k1_plus_1 = params.k1 + 1
        avg_length = self._avg_length
        min_norm = self._min_length_norm()
        field = self._field
        norms = _field_norms(view, field, params.b, avg_length)
        entries: list[SparseKernelTerm] = []
        for term in query.all_terms():
            frequencies = support.postings_frequencies(field, term)
            if not frequencies:
                continue
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail
            columnar = view.postings(field, term)
            assert columnar is not None  # frequencies is non-empty

            def tf_part(term: str = term) -> float:
                max_tf = statistics.field(field).max_frequency(term)
                return (max_tf * k1_plus_1) / (max_tf + params.k1 * min_norm)

            upper = weight * statistics.memoised_bound(
                ("bm25", params.k1, params.b, avg_length, field, term), tf_part
            )

            def tf_column(columnar=columnar) -> np.ndarray:
                tfs = columnar.frequencies
                return (tfs * k1_plus_1) / (tfs + params.k1 * norms[columnar.ordinals])

            tf_parts = view.memoised(
                ("bm25-kernel", params.k1, params.b, avg_length, field, term), tf_column
            )
            contributions = weight * tf_parts
            if self._pruning != "blockmax":
                entries.append(
                    SparseKernelTerm(
                        key=term,
                        upper=upper,
                        ordinals=columnar.ordinals,
                        contributions=contributions,
                    )
                )
                continue

            def block_column(columnar=columnar) -> np.ndarray:
                max_tfs = columnar.block_max_frequencies
                return (max_tfs * k1_plus_1) / (max_tfs + params.k1 * min_norm)

            block_parts = view.memoised(
                ("bm25-kernel-blocks", params.k1, params.b, avg_length, field, term),
                block_column,
            )
            entries.append(
                SparseKernelTerm(
                    key=term,
                    upper=upper,
                    ordinals=columnar.ordinals,
                    contributions=contributions,
                    block_last_ordinals=columnar.block_last_ordinals,
                    block_uppers=weight * block_parts,
                )
            )
        return entries

    def _pruned_survivors(self, query: KeywordQuery, top_k: int) -> list[str]:
        """Run the sparse driver (per shard when sharded); ids to re-score.

        The sharded arm builds one entry list per shard (each walking its
        own postings sub-maps), fans the drivers out with the cross-shard
        θ broadcast, selects survivors per shard and unions the picks —
        the union necessarily contains every globally-positive top-k
        document, and the caller's exact re-scoring pass restores the
        serial ranking bit for bit.  The columnar arm feeds the same
        traversal decisions through the vectorized kernel, sharding by
        slicing the posting columns with the view's ownership map.
        """
        blockmax = self._pruning == "blockmax"
        if self._columnar:
            view = columnar_view(self._index)
            terms = self._columnar_sparse_terms(query, view)
            if self._shards > 1:
                executor = self._executor()
                plan = None
                if getattr(executor, "is_process", False):
                    plan = self._process_plan(query)
                picked = _sharded_columnar_sparse_survivors(
                    view,
                    terms,
                    self._shards,
                    top_k,
                    self._pruning_stats,
                    blockmax,
                    executor=executor,
                    process_plan=plan,
                )
            else:
                ordinals, partials = columnar_sparse(
                    terms, top_k, self._pruning_stats, view.num_documents, blockmax=blockmax
                )
                picked = select_survivor_ordinals(ordinals, partials, top_k)
            return view.ids_of(picked)
        if self._shards > 1:
            return _sharded_sparse_survivors(
                lambda shard: self._sparse_entries(query, shard=shard),
                self._shards,
                top_k,
                self._pruning_stats,
                blockmax,
                executor=self._executor(),
            )
        survivors = maxscore_sparse(
            self._sparse_entries(query), top_k, self._pruning_stats, blockmax=blockmax
        )
        return select_survivors(survivors, top_k)

    def _search_maxscore(self, query: KeywordQuery, top_k: int) -> list[ScoredDocument]:
        """Threshold-pruned traversal + exact re-scoring of the survivors."""
        if top_k <= 0:
            return []
        to_rescore = self._pruned_survivors(query, top_k)
        self._pruning_stats.rescored += len(to_rescore)
        return self._rescore_and_rank(query, top_k, to_rescore)

    def _rescore_and_rank(
        self, query: KeywordQuery, top_k: int, to_rescore: list[str]
    ) -> list[ScoredDocument]:
        """Exact re-scoring + ranking of a survivor superset.

        Survivors are re-scored with the same floating-point operations in
        the same (query) order as :meth:`score_document`, so the ranking is
        byte-identical to the exhaustive path — regardless of which driver
        (scalar or columnar, pruned or plain) picked the survivors; only
        the final k documents pay the full per-term breakdown construction.
        """
        support = self._index.scoring_support()
        params = self._params
        k1_plus_1 = params.k1 + 1
        lengths = support.field_lengths(self._field)
        per_term: list[tuple[float, Mapping[str, int]]] = []
        for term in query.all_terms():
            frequencies = support.postings_frequencies(self._field, term)
            if not frequencies:
                continue
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                continue  # score_document adds an exact 0.0 for these
            per_term.append((weight, frequencies))
        exact: list[tuple[str, float]] = []
        for doc_id in to_rescore:
            doc_len = lengths.get(doc_id, 0)
            length_norm = 1.0 - params.b + params.b * (
                doc_len / self._avg_length if self._avg_length > 0 else 1.0
            )
            score = 0.0
            for weight, frequencies in per_term:
                tf = frequencies.get(doc_id, 0)
                if tf == 0:
                    continue
                score += weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)
            exact.append((doc_id, score))
        exact.sort(key=lambda item: (-item[1], item[0]))
        top = [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]
        return _extend_with_zero_tail(top, top_k, self._index, query, self.score_document)

    def search_exhaustive(self, query: KeywordQuery, top_k: int = 20) -> list[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]


class BM25FScorer:
    """BM25F: term frequencies are combined across fields with field weights
    before a single saturation, following Robertson & Zaragoza."""

    def __init__(
        self,
        index: FieldedIndex,
        field_weights: Mapping[str, float],
        params: BM25Params | None = None,
        pruning: str = "maxscore",
        shards: int = 1,
        columnar: bool = True,
        executor: str = "auto",
        workers: int = 0,
    ) -> None:
        if pruning not in PRUNING_MODES:
            raise ValueError(f"unknown pruning mode: {pruning!r}")
        if shards < 1:
            raise ValueError("shards must be positive")
        if executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor: {executor!r}")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self._index = index
        self._params = params or BM25Params()
        self._pruning = pruning
        self._shards = shards
        self._columnar = columnar
        self._executor_mode = executor
        self._workers = workers
        self._pruning_stats = PruningStats()
        total = sum(field_weights.get(field, 0.0) for field in index.fields)
        if total <= 0:
            raise ValueError("field weights must have positive mass over the index fields")
        self._weights = {field: field_weights.get(field, 0.0) / total for field in index.fields}
        self._avg_lengths = {
            field: index.field_index(field).average_document_length for field in index.fields
        }
        self._num_documents = index.num_documents

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the construction knobs."""
        return resolve_executor(self._executor_mode, self._workers)

    def _field_min_norm(self, field: str) -> float:
        """One field's smallest BM25 length normaliser (recipe scalar)."""
        avg_len = self._avg_lengths[field]
        if avg_len <= 0:
            return 1.0
        min_length = self._index.statistics().field(field).min_length
        return 1.0 - self._params.b + self._params.b * (min_length / avg_len)

    def _process_plan(self, query: KeywordQuery) -> dict:
        """This query's picklable recipe bundle for the process tier.

        Per-term idf weights and memoised union-grid bounds plus the
        per-field weight/normaliser snapshot — everything a worker needs
        to rebuild the exact union columns against its snapshot views
        (see :func:`repro.exec.procpool._bm25f_entries`).
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        weights_key = tuple(sorted(self._weights.items()))
        avgs_key = tuple(sorted(self._avg_lengths.items()))
        terms = []
        for term in query.all_terms():
            if all(
                not support.postings_frequencies(field, term)
                for field, _ in weighted_fields
            ):
                continue
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail

            def weighted_tf_bound(term: str = term) -> float:
                bound = 0.0
                for field, weight in weighted_fields:
                    field_stats = statistics.field(field)
                    max_tf = field_stats.max_frequency(term)
                    if max_tf == 0:
                        continue
                    min_norm = self._field_min_norm(field)
                    bound += weight * max_tf / min_norm if min_norm > 0 else float("inf")
                return bound

            max_weighted_tf = statistics.memoised_bound(
                ("bm25f", params.k1, params.b, weights_key, avgs_key, term),
                weighted_tf_bound,
            )
            if max_weighted_tf == float("inf"):
                upper = weight_idf
            else:
                upper = weight_idf * max_weighted_tf / (max_weighted_tf + params.k1)
            terms.append({"term": term, "weight_idf": weight_idf, "upper": upper})
        return {
            "index": self._index,
            "kind": "bm25f",
            "recipe": {
                "k1": params.k1,
                "b": params.b,
                "fields": [
                    (field, weight, self._avg_lengths[field], self._field_min_norm(field))
                    for field, weight in weighted_fields
                ],
                "terms": terms,
            },
        }

    def _weighted_tf(self, term: str, doc_id: str) -> float:
        weighted = 0.0
        for field, weight in self._weights.items():
            if weight == 0.0:
                continue
            tf = self._index.term_frequency(field, term, doc_id)
            if tf == 0:
                continue
            avg_len = self._avg_lengths[field]
            doc_len = self._index.document_length(field, doc_id)
            length_norm = 1.0 - self._params.b + self._params.b * (
                doc_len / avg_len if avg_len > 0 else 1.0
            )
            weighted += weight * tf / length_norm
        return weighted

    def _document_frequency(self, term: str) -> int:
        docs: set[str] = set()
        for field in self._index.fields:
            docs.update(self._index.field_index(field).documents_containing(term))
        return len(docs)

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        score = 0.0
        term_scores: dict[str, float] = {}
        for term in query.all_terms():
            weighted_tf = self._weighted_tf(term, doc_id)
            if weighted_tf == 0.0:
                term_scores[term] = 0.0
                continue
            weight = idf(self._num_documents, self._document_frequency(term))
            contribution = weight * weighted_tf / (weighted_tf + self._params.k1)
            term_scores[term] = contribution
            score += contribution
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int = 20) -> list[ScoredDocument]:
        """Term-at-a-time BM25F ranking across the weighted fields.

        With ``pruning="maxscore"`` the traversal runs threshold-pruned
        exactly like :meth:`BM25FieldScorer.search`, with the weighted
        cross-field term frequency bounded per field; ``"blockmax"`` adds
        per-range bounds over the union of the fields' postings.
        """
        if self._pruning in PRUNED_MODES:
            return self._search_maxscore(query, top_k)
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        if self._columnar:
            # Unpruned columnar arm: scatter-add over the union posting
            # columns, margin-guarded selection, exact scalar re-scoring
            # (same contract as :meth:`BM25FieldScorer.search`).
            view = columnar_view(self._index)
            ordinals, partials = accumulate_sparse(
                self._columnar_sparse_terms(query, view), view.num_documents
            )
            picked = select_survivor_ordinals(ordinals, partials, top_k)
            return self._rescore_and_rank(query, top_k, view.ids_of(picked))
        if self._shards > 1:
            accumulators = merge_shard_maps(
                self._executor().run(
                    [
                        lambda shard=shard: self._accumulate_plain(query, shard=shard)
                        for shard in range(self._shards)
                    ]
                )
            )
        else:
            accumulators = self._accumulate_plain(query)
        top = select_top_k_with_zero_fill(accumulators, candidates, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def _accumulate_plain(self, query: KeywordQuery, shard: int | None = None) -> dict[str, float]:
        """Plain term-at-a-time accumulation, optionally over one shard."""
        support = self._index.scoring_support()
        params = self._params
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        accumulators: dict[str, float] = {}
        for term in query.all_terms():
            components = [
                (
                    weight,
                    support.postings_frequencies(field, term),
                    support.field_lengths(field),
                    self._avg_lengths[field],
                )
                for field, weight in weighted_fields
            ]
            if not any(frequencies for _, frequencies, _, _ in components):
                continue
            # The cross-field idf weights by the *full* document frequency
            # even in shard mode — the shard split only restricts the walk.
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # zero contribution everywhere; keep the tail's doc_id order
            if shard is not None:
                components = [
                    (
                        weight,
                        _shard_postings(
                            support.statistics, field, term, frequencies, self._shards
                        )[shard],
                        lengths,
                        avg_len,
                    )
                    for (weight, frequencies, lengths, avg_len), (field, _) in zip(
                        components, weighted_fields
                    )
                ]
            matching: set[str] = set()
            for _, frequencies, _, _ in components:
                matching.update(frequencies)
            for doc_id in matching:
                weighted_tf = 0.0
                for weight, frequencies, lengths, avg_len in components:
                    tf = frequencies.get(doc_id, 0)
                    if tf == 0:
                        continue
                    doc_len = lengths.get(doc_id, 0)
                    length_norm = 1.0 - params.b + params.b * (
                        doc_len / avg_len if avg_len > 0 else 1.0
                    )
                    weighted_tf += weight * tf / length_norm
                contribution = weight_idf * weighted_tf / (weighted_tf + params.k1)
                accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution
        return accumulators

    def _pruned_contribution(
        self,
        doc_id: str,
        components: list[tuple[float, Mapping[str, int], Mapping[str, int], float]],
        weight_idf: float,
    ) -> float:
        """One term's exact BM25F contribution (same arithmetic as search)."""
        params = self._params
        weighted_tf = 0.0
        for weight, frequencies, lengths, avg_len in components:
            tf = frequencies.get(doc_id, 0)
            if tf == 0:
                continue
            doc_len = lengths.get(doc_id, 0)
            length_norm = 1.0 - params.b + params.b * (doc_len / avg_len if avg_len > 0 else 1.0)
            weighted_tf += weight * tf / length_norm
        return weight_idf * weighted_tf / (weighted_tf + params.k1)

    def _sparse_entries(
        self, query: KeywordQuery, shard: int | None = None
    ) -> list[SparseTermEntry]:
        """One pruning entry per matching query term, bounds memoised.

        With ``shard`` set the expand/refine walks run over per-shard
        postings sub-maps (one memoised split per field) while idf
        weights, contribution bounds and the union block grid stay
        derived from the full lists — sound for any subset, and shared
        across the shard workers.  Terms with no postings in the shard
        contribute no entry.
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        entries: list[SparseTermEntry] = []
        for term in query.all_terms():
            full_components = [
                (
                    weight,
                    support.postings_frequencies(field, term),
                    support.field_lengths(field),
                    self._avg_lengths[field],
                )
                for field, weight in weighted_fields
            ]
            if not any(frequencies for _, frequencies, _, _ in full_components):
                continue
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail
            components = full_components
            if shard is not None:
                components = [
                    (
                        weight,
                        _shard_postings(
                            statistics, field, term, frequencies, self._shards
                        )[shard],
                        lengths,
                        avg_len,
                    )
                    for (weight, frequencies, lengths, avg_len), (field, _) in zip(
                        full_components, weighted_fields
                    )
                ]
                if not any(frequencies for _, frequencies, _, _ in components):
                    continue

            def weighted_tf_bound(term: str = term) -> float:
                bound = 0.0
                for field, weight in weighted_fields:
                    field_stats = statistics.field(field)
                    max_tf = field_stats.max_frequency(term)
                    if max_tf == 0:
                        continue
                    avg_len = self._avg_lengths[field]
                    if avg_len > 0:
                        min_norm = 1.0 - params.b + params.b * (field_stats.min_length / avg_len)
                    else:
                        min_norm = 1.0
                    bound += weight * max_tf / min_norm if min_norm > 0 else float("inf")
                return bound

            # The key carries this scorer's construction-time average-length
            # snapshot: two BM25F scorers built at different index epochs
            # share the epoch-current statistics object but normalise with
            # their own averages, and a bound derived from smaller averages
            # would not be sound for the older scorer.
            max_weighted_tf = statistics.memoised_bound(
                (
                    "bm25f",
                    params.k1,
                    params.b,
                    tuple(sorted(self._weights.items())),
                    tuple(sorted(self._avg_lengths.items())),
                    term,
                ),
                weighted_tf_bound,
            )
            if max_weighted_tf == float("inf"):
                # Degenerate normaliser (b == 1 with an empty document):
                # the saturated ratio still cannot exceed 1.
                upper = weight_idf
            else:
                upper = weight_idf * max_weighted_tf / (max_weighted_tf + params.k1)

            def expand(
                accumulators: dict[str, float],
                components=components,
                weight_idf: float = weight_idf,
            ) -> None:
                matching: set[str] = set()
                for _, frequencies, _, _ in components:
                    matching.update(frequencies)
                for doc_id in matching:
                    contribution = self._pruned_contribution(doc_id, components, weight_idf)
                    accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution

            def refine(
                accumulators: dict[str, float],
                components=components,
                weight_idf: float = weight_idf,
            ) -> None:
                for doc_id in accumulators:
                    if any(doc_id in frequencies for _, frequencies, _, _ in components):
                        accumulators[doc_id] += self._pruned_contribution(
                            doc_id, components, weight_idf
                        )

            if self._pruning != "blockmax":
                entries.append(
                    SparseTermEntry(key=term, upper=upper, expand=expand, refine=refine)
                )
                continue

            def block_wtf_bounds(term: str = term, components=full_components) -> tuple:
                # Blocks over the *union* of the fields' postings: the
                # per-field grids differ, so per-block field maxima are
                # taken over the actual documents of each union block
                # (one scan per epoch, amortised by the memo below).
                union_ids = sorted(
                    {doc_id for _, frequencies, _, _ in components for doc_id in frequencies}
                )
                min_norms = []
                for field, weight in weighted_fields:
                    field_stats = statistics.field(field)
                    avg_len = self._avg_lengths[field]
                    if avg_len > 0:
                        min_norm = 1.0 - params.b + params.b * (field_stats.min_length / avg_len)
                    else:
                        min_norm = 1.0
                    min_norms.append(min_norm)
                lasts: list[str] = []
                bounds: list[float] = []
                for start in range(0, len(union_ids), BLOCK_SIZE):
                    block = union_ids[start : start + BLOCK_SIZE]
                    lasts.append(block[-1])
                    wtf_bound = 0.0
                    for (weight, frequencies, _, _), min_norm in zip(components, min_norms):
                        max_tf = max(frequencies.get(doc_id, 0) for doc_id in block)
                        if max_tf == 0:
                            continue
                        wtf_bound += (
                            weight * max_tf / min_norm if min_norm > 0 else float("inf")
                        )
                    bounds.append(wtf_bound)
                return (tuple(lasts), tuple(bounds))

            # The memoised value is idf-free (the weighted-tf bound per
            # block); the idf weight, which depends on this scorer's
            # construction-time N, saturates the bound per query below —
            # scorers built at different index epochs share the grid but
            # never a weight-scaled bound.
            lasts, wtf_bounds = statistics.memoised_blocks(
                (
                    "bm25f-blocks",
                    params.k1,
                    params.b,
                    tuple(sorted(self._weights.items())),
                    tuple(sorted(self._avg_lengths.items())),
                    term,
                    BLOCK_SIZE,
                ),
                block_wtf_bounds,
            )
            block_uppers = tuple(
                # Degenerate normaliser: the saturated ratio still cannot
                # exceed 1 (same cap as the global bound).
                weight_idf
                if wtf_bound == float("inf")
                else weight_idf * wtf_bound / (wtf_bound + params.k1)
                for wtf_bound in wtf_bounds
            )

            def contribution(
                doc_id: str,
                components=components,
                weight_idf: float = weight_idf,
            ) -> float:
                if any(doc_id in frequencies for _, frequencies, _, _ in components):
                    return self._pruned_contribution(doc_id, components, weight_idf)
                return 0.0

            entries.append(
                BlockedSparseTermEntry(
                    key=term,
                    upper=upper,
                    expand=expand,
                    refine=refine,
                    block_lasts=lasts,
                    block_uppers=block_uppers,
                    contribution=contribution,
                )
            )
        return entries

    def _columnar_sparse_terms(
        self, query: KeywordQuery, view: ColumnarIndex
    ) -> list[SparseKernelTerm]:
        """One kernel term per matching query term over the union grid.

        The posting column lives on the union of the weighted fields'
        ordinals (the same document set, in the same order, as the
        scalar union block grid); the weighted-tf column accumulates
        ``weight * tf / norm`` per field, saturated once per query by
        the idf weight.  As everywhere on the columnar path, the values
        only guide selection — survivors are re-scored exactly — while
        upper bounds reuse the scalar memoised bounds and the block
        grid chunks the identical union.
        """
        support = self._index.scoring_support()
        statistics = support.statistics
        params = self._params
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        weights_key = tuple(sorted(self._weights.items()))
        avgs_key = tuple(sorted(self._avg_lengths.items()))
        entries: list[SparseKernelTerm] = []
        for term in query.all_terms():
            field_postings = [
                (field, weight, view.postings(field, term))
                for field, weight in weighted_fields
            ]
            if all(columnar is None for _, _, columnar in field_postings):
                continue
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # zero everywhere: stays in the zero-scored tail

            def weighted_tf_bound(term: str = term) -> float:
                bound = 0.0
                for field, weight in weighted_fields:
                    field_stats = statistics.field(field)
                    max_tf = field_stats.max_frequency(term)
                    if max_tf == 0:
                        continue
                    avg_len = self._avg_lengths[field]
                    if avg_len > 0:
                        min_norm = 1.0 - params.b + params.b * (
                            field_stats.min_length / avg_len
                        )
                    else:
                        min_norm = 1.0
                    bound += weight * max_tf / min_norm if min_norm > 0 else float("inf")
                return bound

            # Same memo (same key, same closure) as the scalar entries:
            # whichever path runs first populates the epoch's bound.
            max_weighted_tf = statistics.memoised_bound(
                ("bm25f", params.k1, params.b, weights_key, avgs_key, term),
                weighted_tf_bound,
            )
            if max_weighted_tf == float("inf"):
                upper = weight_idf
            else:
                upper = weight_idf * max_weighted_tf / (max_weighted_tf + params.k1)

            def union_column(field_postings=field_postings) -> tuple[np.ndarray, np.ndarray]:
                union_ordinals = None
                for _, _, columnar in field_postings:
                    if columnar is None:
                        continue
                    union_ordinals = (
                        columnar.ordinals
                        if union_ordinals is None
                        else np.union1d(union_ordinals, columnar.ordinals)
                    )
                weighted_tf = np.zeros(union_ordinals.size, dtype=np.float64)
                for field, weight, columnar in field_postings:
                    if columnar is None:
                        continue
                    norms = _field_norms(view, field, params.b, self._avg_lengths[field])
                    positions = np.searchsorted(union_ordinals, columnar.ordinals)
                    weighted_tf[positions] += (
                        weight * columnar.frequencies / norms[columnar.ordinals]
                    )
                return union_ordinals, weighted_tf

            union_ordinals, weighted_tf = view.memoised(
                ("bm25f-kernel", params.b, weights_key, avgs_key, term), union_column
            )
            contributions = weight_idf * (weighted_tf / (weighted_tf + params.k1))
            if self._pruning != "blockmax":
                entries.append(
                    SparseKernelTerm(
                        key=term,
                        upper=upper,
                        ordinals=union_ordinals,
                        contributions=contributions,
                    )
                )
                continue

            def block_column(
                union_ordinals=union_ordinals, field_postings=field_postings
            ) -> tuple[np.ndarray, np.ndarray]:
                # The union grid chunks the same sorted document order as
                # the scalar ``bm25f-blocks`` memo, so block membership
                # matches block for block; bounds stay idf-free.
                lasts = union_ordinals[BLOCK_SIZE - 1 :: BLOCK_SIZE]
                if union_ordinals.size % BLOCK_SIZE:
                    lasts = np.append(lasts, union_ordinals[-1])
                wtf_bounds = np.zeros(lasts.size, dtype=np.float64)
                for field, weight, columnar in field_postings:
                    if columnar is None:
                        continue
                    field_stats = statistics.field(field)
                    avg_len = self._avg_lengths[field]
                    if avg_len > 0:
                        min_norm = 1.0 - params.b + params.b * (
                            field_stats.min_length / avg_len
                        )
                    else:
                        min_norm = 1.0
                    max_tfs = np.zeros(lasts.size, dtype=np.float64)
                    blocks = np.searchsorted(lasts, columnar.ordinals, side="left")
                    np.maximum.at(max_tfs, blocks, columnar.frequencies)
                    if min_norm > 0:
                        wtf_bounds += weight * max_tfs / min_norm
                    else:
                        # Degenerate normaliser: the block bound for any
                        # block with a matching posting is unbounded (the
                        # saturation below caps it at the idf weight).
                        wtf_bounds[max_tfs > 0] = np.inf
                return lasts, wtf_bounds

            lasts, wtf_bounds = view.memoised(
                ("bm25f-kernel-blocks", params.b, weights_key, avgs_key, term),
                block_column,
            )
            finite = np.isfinite(wtf_bounds)
            saturated = np.ones_like(wtf_bounds)
            np.divide(wtf_bounds, wtf_bounds + params.k1, out=saturated, where=finite)
            entries.append(
                SparseKernelTerm(
                    key=term,
                    upper=upper,
                    ordinals=union_ordinals,
                    contributions=contributions,
                    block_last_ordinals=lasts,
                    block_uppers=weight_idf * saturated,
                )
            )
        return entries

    def _search_maxscore(self, query: KeywordQuery, top_k: int) -> list[ScoredDocument]:
        """Threshold-pruned traversal + exact re-scoring of the survivors."""
        if top_k <= 0:
            return []
        blockmax = self._pruning == "blockmax"
        if self._columnar:
            view = columnar_view(self._index)
            terms = self._columnar_sparse_terms(query, view)
            if self._shards > 1:
                executor = self._executor()
                plan = None
                if getattr(executor, "is_process", False):
                    plan = self._process_plan(query)
                picked = _sharded_columnar_sparse_survivors(
                    view,
                    terms,
                    self._shards,
                    top_k,
                    self._pruning_stats,
                    blockmax,
                    executor=executor,
                    process_plan=plan,
                )
            else:
                ordinals, partials = columnar_sparse(
                    terms, top_k, self._pruning_stats, view.num_documents, blockmax=blockmax
                )
                picked = select_survivor_ordinals(ordinals, partials, top_k)
            to_rescore = view.ids_of(picked)
        elif self._shards > 1:
            to_rescore = _sharded_sparse_survivors(
                lambda shard: self._sparse_entries(query, shard=shard),
                self._shards,
                top_k,
                self._pruning_stats,
                blockmax,
                executor=self._executor(),
            )
        else:
            survivors = maxscore_sparse(
                self._sparse_entries(query), top_k, self._pruning_stats, blockmax=blockmax
            )
            to_rescore = select_survivors(survivors, top_k)
        self._pruning_stats.rescored += len(to_rescore)
        return self._rescore_and_rank(query, top_k, to_rescore)

    def _rescore_and_rank(
        self, query: KeywordQuery, top_k: int, to_rescore: list[str]
    ) -> list[ScoredDocument]:
        """Exact re-scoring + ranking of a survivor superset.

        Survivor scores are rebuilt with :meth:`_pruned_contribution`,
        whose arithmetic mirrors :meth:`score_document` term for term, so
        the ranking is byte-identical to the exhaustive path — regardless
        of which driver picked the survivors.
        """
        support = self._index.scoring_support()
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        per_term: list[tuple[float, list[tuple[float, Mapping[str, int], Mapping[str, int], float]]]] = []
        for term in query.all_terms():
            components = [
                (
                    weight,
                    support.postings_frequencies(field, term),
                    support.field_lengths(field),
                    self._avg_lengths[field],
                )
                for field, weight in weighted_fields
            ]
            if not any(frequencies for _, frequencies, _, _ in components):
                continue
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # score_document adds an exact 0.0 for these
            per_term.append((weight_idf, components))
        exact: list[tuple[str, float]] = []
        for doc_id in to_rescore:
            score = 0.0
            for weight_idf, components in per_term:
                if any(doc_id in frequencies for _, frequencies, _, _ in components):
                    score += self._pruned_contribution(doc_id, components, weight_idf)
            exact.append((doc_id, score))
        exact.sort(key=lambda item: (-item[1], item[0]))
        top = [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]
        return _extend_with_zero_tail(top, top_k, self._index, query, self.score_document)

    def search_exhaustive(self, query: KeywordQuery, top_k: int = 20) -> list[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]
