"""BM25 and BM25F baselines for entity retrieval.

The paper's search engine uses a mixture of language models; BM25(F) is the
standard lexical alternative and serves as the comparison point of the E7
search-quality experiment.

Like the language-model scorers, retrieval runs term-at-a-time over the
postings with per-(field, term) statistics resolved once per term and a
bounded-heap top-k; the score-all path remains as ``search_exhaustive``.
Because BM25 gives documents without any matching term a score of exactly
``0.0``, the accumulator only ever visits postings — candidates that match
solely in unscored fields are appended as a zero-scored, doc-id-ordered
tail to match the exhaustive ranking byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..index import FieldedIndex, select_top_k_with_zero_fill
from .mlm import ScoredDocument
from .query import KeywordQuery


@dataclass(frozen=True)
class BM25Params:
    """BM25 hyper-parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


def idf(num_documents: int, document_frequency: int) -> float:
    """Robertson-Sparck-Jones IDF with the +0.5 correction (never negative)."""
    numerator = num_documents - document_frequency + 0.5
    denominator = document_frequency + 0.5
    return max(0.0, math.log(1.0 + numerator / denominator))


class BM25FieldScorer:
    """Plain BM25 over a single field of a fielded index."""

    def __init__(self, index: FieldedIndex, field: str, params: BM25Params | None = None) -> None:
        self._index = index
        self._field = field
        self._params = params or BM25Params()
        field_index = index.field_index(field)
        self._avg_length = field_index.average_document_length
        self._num_documents = field_index.num_documents

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        params = self._params
        doc_len = self._index.document_length(self._field, doc_id)
        length_norm = 1.0 - params.b + params.b * (
            doc_len / self._avg_length if self._avg_length > 0 else 1.0
        )
        score = 0.0
        term_scores: Dict[str, float] = {}
        for term in query.all_terms():
            tf = self._index.term_frequency(self._field, term, doc_id)
            if tf == 0:
                term_scores[term] = 0.0
                continue
            df = self._index.document_frequency(self._field, term)
            weight = idf(self._num_documents, df)
            contribution = weight * (tf * (params.k1 + 1)) / (tf + params.k1 * length_norm)
            term_scores[term] = contribution
            score += contribution
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int = 20) -> List[ScoredDocument]:
        """Term-at-a-time BM25 ranking over the field's postings."""
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        params = self._params
        k1_plus_1 = params.k1 + 1
        lengths = support.field_lengths(self._field)
        accumulators: Dict[str, float] = {}
        for term in query.all_terms():
            frequencies = support.postings_frequencies(self._field, term)
            if not frequencies:
                continue
            # IDF from the construction-time document count, like
            # score_document: this scorer snapshots N and avg_length when
            # built, and both paths must agree even after index mutations.
            weight = idf(self._num_documents, len(frequencies))
            if weight == 0.0:
                # Zero contribution for every posting (possible when the
                # index grew past the snapshot N): leave these documents to
                # the zero-scored tail so ties keep the global doc_id order.
                continue
            for doc_id, tf in frequencies.items():
                doc_len = lengths.get(doc_id, 0)
                length_norm = 1.0 - params.b + params.b * (
                    doc_len / self._avg_length if self._avg_length > 0 else 1.0
                )
                contribution = weight * (tf * k1_plus_1) / (tf + params.k1 * length_norm)
                accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution
        top = select_top_k_with_zero_fill(accumulators, candidates, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def search_exhaustive(self, query: KeywordQuery, top_k: int = 20) -> List[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]


class BM25FScorer:
    """BM25F: term frequencies are combined across fields with field weights
    before a single saturation, following Robertson & Zaragoza."""

    def __init__(
        self,
        index: FieldedIndex,
        field_weights: Mapping[str, float],
        params: BM25Params | None = None,
    ) -> None:
        self._index = index
        self._params = params or BM25Params()
        total = sum(field_weights.get(field, 0.0) for field in index.fields)
        if total <= 0:
            raise ValueError("field weights must have positive mass over the index fields")
        self._weights = {field: field_weights.get(field, 0.0) / total for field in index.fields}
        self._avg_lengths = {
            field: index.field_index(field).average_document_length for field in index.fields
        }
        self._num_documents = index.num_documents

    def _weighted_tf(self, term: str, doc_id: str) -> float:
        weighted = 0.0
        for field, weight in self._weights.items():
            if weight == 0.0:
                continue
            tf = self._index.term_frequency(field, term, doc_id)
            if tf == 0:
                continue
            avg_len = self._avg_lengths[field]
            doc_len = self._index.document_length(field, doc_id)
            length_norm = 1.0 - self._params.b + self._params.b * (
                doc_len / avg_len if avg_len > 0 else 1.0
            )
            weighted += weight * tf / length_norm
        return weighted

    def _document_frequency(self, term: str) -> int:
        docs: set[str] = set()
        for field in self._index.fields:
            docs.update(self._index.field_index(field).documents_containing(term))
        return len(docs)

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        score = 0.0
        term_scores: Dict[str, float] = {}
        for term in query.all_terms():
            weighted_tf = self._weighted_tf(term, doc_id)
            if weighted_tf == 0.0:
                term_scores[term] = 0.0
                continue
            weight = idf(self._num_documents, self._document_frequency(term))
            contribution = weight * weighted_tf / (weighted_tf + self._params.k1)
            term_scores[term] = contribution
            score += contribution
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int = 20) -> List[ScoredDocument]:
        """Term-at-a-time BM25F ranking across the weighted fields."""
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        params = self._params
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        accumulators: Dict[str, float] = {}
        for term in query.all_terms():
            components = [
                (
                    weight,
                    support.postings_frequencies(field, term),
                    support.field_lengths(field),
                    self._avg_lengths[field],
                )
                for field, weight in weighted_fields
            ]
            matching: set[str] = set()
            for _, frequencies, _, _ in components:
                matching.update(frequencies)
            if not matching:
                continue
            weight_idf = idf(self._num_documents, support.document_frequency_any_field(term))
            if weight_idf == 0.0:
                continue  # zero contribution everywhere; keep the tail's doc_id order
            for doc_id in matching:
                weighted_tf = 0.0
                for weight, frequencies, lengths, avg_len in components:
                    tf = frequencies.get(doc_id, 0)
                    if tf == 0:
                        continue
                    doc_len = lengths.get(doc_id, 0)
                    length_norm = 1.0 - params.b + params.b * (
                        doc_len / avg_len if avg_len > 0 else 1.0
                    )
                    weighted_tf += weight * tf / length_norm
                contribution = weight_idf * weighted_tf / (weighted_tf + params.k1)
                accumulators[doc_id] = accumulators.get(doc_id, 0.0) + contribution
        top = select_top_k_with_zero_fill(accumulators, candidates, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def search_exhaustive(self, query: KeywordQuery, top_k: int = 20) -> List[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]
