"""The entity search engine: five-field documents, language models, MLM."""

from .bm25 import BM25FScorer, BM25FieldScorer, BM25Params, idf
from .engine import SearchEngine, SearchHit
from .fields import (
    FIELD_ANALYZERS,
    FIELD_ATTRIBUTES,
    FIELD_CATEGORIES,
    FIELD_NAMES,
    FIELD_RELATED,
    FIELD_SIMILAR,
    FieldedEntityDocument,
    analyze_document,
    build_all_documents,
    build_entity_document,
)
from .language_model import (
    SmoothingParams,
    dirichlet_probability,
    jelinek_mercer_probability,
    log_probability,
    smoothed_probability,
)
from .mlm import MixtureLanguageModelScorer, ScoredDocument, SingleFieldScorer
from .query import KeywordQuery, parse_query

__all__ = [
    "BM25FScorer",
    "BM25FieldScorer",
    "BM25Params",
    "FIELD_ANALYZERS",
    "FIELD_ATTRIBUTES",
    "FIELD_CATEGORIES",
    "FIELD_NAMES",
    "FIELD_RELATED",
    "FIELD_SIMILAR",
    "FieldedEntityDocument",
    "KeywordQuery",
    "MixtureLanguageModelScorer",
    "ScoredDocument",
    "SearchEngine",
    "SearchHit",
    "SingleFieldScorer",
    "SmoothingParams",
    "analyze_document",
    "build_all_documents",
    "build_entity_document",
    "dirichlet_probability",
    "idf",
    "jelinek_mercer_probability",
    "log_probability",
    "parse_query",
    "smoothed_probability",
]
