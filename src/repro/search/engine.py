"""The entity search engine (Fig 2, §2.2).

Wires together document construction, analysis, the fielded inverted index
and the mixture-of-language-models scorer into a single object the PivotE
facade (and the examples) can use:

>>> engine = SearchEngine.from_graph(kg)
>>> hits = engine.search("forrest gump")

Concurrency contract (snapshot-isolated serving): queries capture one
scorer (and with it one index instance) when they start and score against
it to completion.  Mutations never touch a published index — ``build()``
constructs a fresh index and :meth:`add_entity` derives a copy-on-write
successor (:meth:`~repro.index.fielded_index.FieldedIndex.with_added_document`)
— then swap it in atomically under the engine's mutation lock.  In-flight
queries therefore finish on the epoch they started on while mutations
proceed, and the LRU result cache keys on the index instance
(``uid, epoch``), so a result computed against an old snapshot can never
be served for a new one.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence
from dataclasses import dataclass

from ..config import SearchConfig
from ..exec import dedupe_batch, executor_stats, release_snapshots, snapshot_registry
from ..index import FieldedIndex, ShardedFieldedIndex
from ..kg import KnowledgeGraph, traversal_stats
from ..stats import CacheStats, EngineStats, PruningStatsView, StorageStats
from ..utils import LRUCache
from .bm25 import BM25FScorer, BM25FieldScorer
from .fields import (
    FieldedEntityDocument,
    analyze_document,
    build_all_documents,
    build_entity_document,
)
from .mlm import MixtureLanguageModelScorer, ScoredDocument, SingleFieldScorer
from .query import KeywordQuery, parse_query


@dataclass(frozen=True)
class SearchHit:
    """One search result: the entity, its score and its display label."""

    entity_id: str
    score: float
    label: str

    def as_dict(self) -> dict[str, object]:
        return {"entity": self.entity_id, "score": self.score, "label": self.label}


class SearchEngine:
    """Keyword entity search over a knowledge graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: SearchConfig | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or SearchConfig()
        self._documents: dict[str, FieldedEntityDocument] = {}
        self._index = self._new_index()
        self._scorer: MixtureLanguageModelScorer | None = None
        #: Serialises mutations (build / add_entity): each one publishes a
        #: fresh index instance, so concurrent queries keep scoring their
        #: captured snapshot.
        self._mutation_lock = threading.Lock()
        #: LRU query-result cache: keyed by the parsed query, requested k
        #: and the index *instance* (uid + epoch, so neither mutations nor
        #: rebuilds can ever serve stale hits); cleared explicitly on
        #: every engine-level mutation.
        self._result_cache: LRUCache[tuple[object, ...], tuple[SearchHit, ...]] = LRUCache(
            self._config.result_cache_size
        )
        #: Lazily created durable store (``storage="disk"`` only).
        self._disk_store = None
        self._apply_storage_policy(self._index)

    def _new_index(self) -> FieldedIndex:
        """An empty index matching the configuration's shard layout."""
        if self._config.shards > 1:
            return ShardedFieldedIndex(self._config.fields, self._config.shards)
        return FieldedIndex(self._config.fields)

    def _apply_storage_policy(self, index: FieldedIndex) -> None:
        """Honour ``storage="off"`` for a freshly installed index instance.

        Rebuilds allocate fresh uids, so the registry is told about each
        one; a disabled uid makes the process tier score inline instead
        of publishing shared-memory segments.
        """
        if self._config.storage == "off":
            snapshot_registry().disable(index.uid)

    def _ensure_disk_store(self):
        if self._disk_store is None:
            from ..storage.diskstore import DiskSnapshotStore

            assert self._config.snapshot_dir is not None
            self._disk_store = DiskSnapshotStore(
                os.path.join(self._config.snapshot_dir, "store")
            )
        return self._disk_store

    def _publish_to_disk(self, index: FieldedIndex) -> None:
        """Best-effort durable publish of a freshly built index.

        ``storage="disk"`` persists each successor epoch under the
        configured ``snapshot_dir`` so a later cold start can attach
        instead of rebuilding.  Failures are counted, never raised — the
        in-RAM index is already serving.
        """
        if self._config.storage != "disk" or not self._config.snapshot_dir:
            return
        store = self._ensure_disk_store()
        try:
            from ..index.columnar import columnar_view
            from ..storage.codec import encode_index_snapshot
            from ..storage.kgstore import SEARCH_INDEX_KEY

            manifest, builder = encode_index_snapshot(
                index, columnar_view(index), include_doc_ids=True
            )
            store.publish(
                SEARCH_INDEX_KEY,
                manifest,
                builder,
                extra={"graph_epoch": self._graph.epoch},
            )
        except (OSError, ValueError, RuntimeError):
            store.failures += 1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph, config: SearchConfig | None = None) -> "SearchEngine":
        """Build and index the search engine for a whole graph."""
        engine = cls(graph, config=config)
        engine.build()
        return engine

    @classmethod
    def restore(
        cls,
        graph: KnowledgeGraph,
        index: FieldedIndex,
        config: SearchConfig | None = None,
    ) -> "SearchEngine":
        """Adopt a pre-built index (replayed from a durable snapshot).

        The cold-start path: the index arrives already populated (see
        :func:`repro.storage.kgstore.restore_fielded_index`), so no
        documents are built and nothing is tokenised.  The documents
        mapping stays empty — :meth:`document` rebuilds entries lazily
        on first access, exactly as post-``build()`` misses do.
        """
        engine = cls(graph, config=config)
        with engine._mutation_lock:
            engine._scorer = MixtureLanguageModelScorer(index, engine._config)
            replaced, engine._index = engine._index, index
            engine._result_cache.clear()
        release_snapshots(replaced.uid)
        engine._apply_storage_policy(index)
        return engine

    def build(self) -> "SearchEngine":
        """(Re)build the index from the graph's current contents.

        The replacement index is fully constructed before the atomic swap,
        so concurrent queries keep their pre-rebuild snapshot throughout.
        """
        with self._mutation_lock:
            documents = build_all_documents(self._graph)
            index = self._new_index()
            for entity_id, document in documents.items():
                index.add_document(entity_id, analyze_document(document))
            self._documents = documents
            self._scorer = MixtureLanguageModelScorer(index, self._config)
            replaced, self._index = self._index, index
            self._result_cache.clear()
        # A rebuild allocates a fresh uid, so the replaced instance's
        # shared-memory snapshot (if the process tier published one) can
        # never be requested again — unlink it.  Workers still attached
        # keep their mapping (POSIX unlink semantics); late attachers
        # fall back inline.
        release_snapshots(replaced.uid)
        self._apply_storage_policy(index)
        self._publish_to_disk(index)
        return self

    def add_entity(self, entity_id: str) -> None:
        """Index (or re-index) one entity after the graph changed.

        Copy-on-write: the published index is never mutated — a successor
        carrying the document is derived and swapped in, so queries
        holding the old snapshot finish untouched.
        """
        with self._mutation_lock:
            document = build_entity_document(self._graph, entity_id)
            self._documents[entity_id] = document
            index = self._index.with_added_document(entity_id, analyze_document(document))
            self._scorer = MixtureLanguageModelScorer(index, self._config)
            self._index = index
            self._result_cache.clear()
        # Copy-on-write successors share the uid: the registry replaces
        # the old epoch's segment on the next process-tier publish, so
        # nothing needs releasing here.
        self._apply_storage_policy(index)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> FieldedIndex:
        """The underlying fielded inverted index (the current snapshot)."""
        return self._index

    @property
    def config(self) -> SearchConfig:
        return self._config

    def document(self, entity_id: str) -> FieldedEntityDocument:
        """The five-field document of an entity (Table 1)."""
        if entity_id not in self._documents:
            self._documents[entity_id] = build_entity_document(self._graph, entity_id)
        return self._documents[entity_id]

    def num_indexed(self) -> int:
        """Number of indexed entities."""
        return self._index.num_documents

    def _require_scorer(self) -> MixtureLanguageModelScorer:
        scorer = self._scorer
        if scorer is None:
            self.build()
            scorer = self._scorer
        assert scorer is not None
        return scorer

    @property
    def mlm_scorer(self) -> MixtureLanguageModelScorer:
        """The primary mixture-of-language-models scorer (built on demand)."""
        return self._require_scorer()

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: str | KeywordQuery, top_k: int | None = None) -> list[SearchHit]:
        """Retrieve the top-k entities for a keyword query.

        Repeated queries are served from an LRU result cache; the cache
        key includes the captured index instance (uid and epoch) and the
        cache is cleared by :meth:`build` and :meth:`add_entity`, so
        mutations always invalidate it.  The whole query runs against the
        scorer captured here — a concurrent mutation swaps in a new
        snapshot without disturbing it.
        """
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        scorer = self._require_scorer()  # may (re)build; captures one snapshot
        return self._search_with(scorer, parsed, top_k)

    def search_many(
        self, queries: Sequence[str | KeywordQuery], top_k: int | None = None
    ) -> list[list[SearchHit]]:
        """Answer a batch of keyword queries (one result list per query).

        The whole batch runs against a single captured snapshot, so the
        per-epoch memoisation (statistics, scorer bounds, block grids)
        warms on the first miss and serves the rest, and *identical*
        queries inside the batch are computed once and fanned back out.
        Results are byte-identical to issuing the queries one at a time.
        """
        parsed = [
            query if isinstance(query, KeywordQuery) else parse_query(query)
            for query in queries
        ]
        scorer = self._require_scorer()
        requested = top_k or self._config.top_k

        def key_of(query: KeywordQuery) -> tuple[object, ...]:
            restrictions = tuple(
                (field, terms) for field, terms in query.field_restrictions.items()
            )
            return (query.terms, restrictions, requested)

        results = dedupe_batch(
            parsed, key_of, lambda query: self._search_with(scorer, query, top_k)
        )
        # Fresh list per position: duplicate queries share hit tuples, not
        # the caller-mutable list object.
        return [list(hits) for hits in results]

    def _search_with(
        self,
        scorer: MixtureLanguageModelScorer,
        parsed: KeywordQuery,
        top_k: int | None,
    ) -> list[SearchHit]:
        """One query against one captured scorer snapshot, LRU-backed."""
        key = self._cache_key(parsed, top_k, scorer.index)
        if key is not None:
            cached = self._result_cache.get(key)
            if cached is not None:
                return list(cached)
        hits = [self._to_hit(result) for result in scorer.search(parsed, top_k=top_k)]
        if key is not None:
            self._result_cache.put(key, tuple(hits))
        return hits

    def _cache_key(
        self, parsed: KeywordQuery, top_k: int | None, index: FieldedIndex
    ) -> tuple[object, ...] | None:
        """The result-cache key for a parsed query, or ``None`` when disabled.

        Keys carry the index snapshot's ``(uid, epoch)`` pair: the uid
        separates rebuilt / copy-on-write instances whose epoch counters
        coincide, so a result computed against an older snapshot can never
        be served for a newer one.
        """
        if self._config.result_cache_size <= 0:
            return None
        restrictions = tuple(
            (field, terms) for field, terms in parsed.field_restrictions.items()
        )
        return (
            parsed.terms,
            restrictions,
            top_k or self._config.top_k,
            index.uid,
            index.epoch,
        )

    def stats(self) -> EngineStats:
        """The engine's typed introspection record.

        One :class:`~repro.stats.EngineStats` carrying the execution
        configuration echo (pruning mode, shard layout, columnar
        on/off), the current index epoch, the result cache's counters
        (``"results"``) and the primary scorer's pruning counters
        (``"mlm"``), plus the engine's shard-execution record
        (``executor``).  Builds the index on demand, like any query
        would.
        """
        scorer = self._require_scorer()
        return EngineStats(
            component="search",
            epoch=self._index.epoch,
            shards=self._config.shards,
            columnar=self._config.columnar,
            pruning=self._config.pruning,
            caches=(CacheStats.from_info("results", self._result_cache.cache_info()),),
            pruning_counters=(
                PruningStatsView.from_counters("mlm", scorer.pruning_info()),
            ),
            executor=executor_stats(self._config.executor, self._config.workers),
            storage=self.storage_stats(),
            traversal=traversal_stats(self._graph),
        )

    def storage_stats(self, cold_start_ms: float = 0.0) -> StorageStats | None:
        """The engine's durable-snapshot record, or ``None`` on plain shm.

        Reported only when the storage knob deviates from the default
        (``"disk"`` / ``"off"``) or a snapshot directory is configured —
        the common shm-only setup keeps its stats record unchanged.
        """
        if self._config.storage == "shm" and not self._config.snapshot_dir:
            return None
        store = self._disk_store
        return StorageStats(
            backend=self._config.storage,
            snapshot_dir=self._config.snapshot_dir,
            publishes=store.publishes if store is not None else 0,
            published_bytes=store.published_bytes if store is not None else 0,
            attaches=store.attaches if store is not None else 0,
            attached_bytes=store.attached_bytes if store is not None else 0,
            failures=store.failures if store is not None else 0,
            cold_start_ms=cold_start_ms,
        )

    def close(self) -> None:
        """Release the engine's shared-memory snapshots and cached results.

        The worker pools themselves are process-wide (shared by every
        engine) and stay warm; only this engine's published segments are
        unlinked.  Safe to call repeatedly — the engine remains usable,
        the next process-tier query simply republishes.
        """
        release_snapshots(self._index.uid)
        self._result_cache.clear()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the LRU result cache.

        Deprecated shim over :meth:`stats` (the ``"results"`` cache).
        """
        return self.stats().cache("results").as_info()

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters of the primary (MLM) scorer.

        Deprecated shim over :meth:`stats` (the ``"mlm"`` counters).
        """
        return self.stats().pruning_view("mlm").as_counters()

    def explain(self, query: str | KeywordQuery, entity_id: str) -> ScoredDocument:
        """Score a single entity and return the per-term breakdown."""
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        return self._require_scorer().score_document(parsed, entity_id)

    def _to_hit(self, result: ScoredDocument) -> SearchHit:
        return SearchHit(
            entity_id=result.doc_id,
            score=result.score,
            label=self._graph.label(result.doc_id),
        )

    # ------------------------------------------------------------------ #
    # Baseline scorers (used by the evaluation harness)
    # ------------------------------------------------------------------ #
    def bm25f_scorer(self) -> BM25FScorer:
        """A BM25F scorer over the same index and field weights."""
        return BM25FScorer(
            self._index,
            self._config.field_weights,
            pruning=self._config.pruning,
            shards=self._config.shards,
            columnar=self._config.columnar,
            executor=self._config.executor,
            workers=self._config.workers,
        )

    def bm25_names_scorer(self) -> BM25FieldScorer:
        """A plain BM25 scorer restricted to the names field."""
        return BM25FieldScorer(
            self._index,
            "names",
            pruning=self._config.pruning,
            shards=self._config.shards,
            columnar=self._config.columnar,
            executor=self._config.executor,
            workers=self._config.workers,
        )

    def single_field_scorer(self, field: str = "names") -> SingleFieldScorer:
        """A query-likelihood scorer over a single field."""
        return SingleFieldScorer(self._index, field, self._config)
