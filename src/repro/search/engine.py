"""The entity search engine (Fig 2, §2.2).

Wires together document construction, analysis, the fielded inverted index
and the mixture-of-language-models scorer into a single object the PivotE
facade (and the examples) can use:

>>> engine = SearchEngine.from_graph(kg)
>>> hits = engine.search("forrest gump")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import SearchConfig
from ..index import FieldedIndex
from ..kg import KnowledgeGraph
from .bm25 import BM25FScorer, BM25FieldScorer
from .fields import (
    FieldedEntityDocument,
    analyze_document,
    build_all_documents,
    build_entity_document,
)
from .mlm import MixtureLanguageModelScorer, ScoredDocument, SingleFieldScorer
from .query import KeywordQuery, parse_query


@dataclass(frozen=True)
class SearchHit:
    """One search result: the entity, its score and its display label."""

    entity_id: str
    score: float
    label: str

    def as_dict(self) -> Dict[str, object]:
        return {"entity": self.entity_id, "score": self.score, "label": self.label}


class SearchEngine:
    """Keyword entity search over a knowledge graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: Optional[SearchConfig] = None,
    ) -> None:
        self._graph = graph
        self._config = config or SearchConfig()
        self._documents: Dict[str, FieldedEntityDocument] = {}
        self._index = FieldedIndex(self._config.fields)
        self._scorer: Optional[MixtureLanguageModelScorer] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph, config: Optional[SearchConfig] = None) -> "SearchEngine":
        """Build and index the search engine for a whole graph."""
        engine = cls(graph, config=config)
        engine.build()
        return engine

    def build(self) -> "SearchEngine":
        """(Re)build the index from the graph's current contents."""
        self._documents = build_all_documents(self._graph)
        self._index = FieldedIndex(self._config.fields)
        for entity_id, document in self._documents.items():
            self._index.add_document(entity_id, analyze_document(document))
        self._scorer = MixtureLanguageModelScorer(self._index, self._config)
        return self

    def add_entity(self, entity_id: str) -> None:
        """Index (or re-index) one entity after the graph changed."""
        document = build_entity_document(self._graph, entity_id)
        self._documents[entity_id] = document
        self._index.add_document(entity_id, analyze_document(document))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> FieldedIndex:
        """The underlying fielded inverted index."""
        return self._index

    @property
    def config(self) -> SearchConfig:
        return self._config

    def document(self, entity_id: str) -> FieldedEntityDocument:
        """The five-field document of an entity (Table 1)."""
        if entity_id not in self._documents:
            self._documents[entity_id] = build_entity_document(self._graph, entity_id)
        return self._documents[entity_id]

    def num_indexed(self) -> int:
        """Number of indexed entities."""
        return self._index.num_documents

    def _require_scorer(self) -> MixtureLanguageModelScorer:
        if self._scorer is None:
            self.build()
        assert self._scorer is not None
        return self._scorer

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: str | KeywordQuery, top_k: Optional[int] = None) -> List[SearchHit]:
        """Retrieve the top-k entities for a keyword query."""
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        scored = self._require_scorer().search(parsed, top_k=top_k)
        return [self._to_hit(result) for result in scored]

    def explain(self, query: str | KeywordQuery, entity_id: str) -> ScoredDocument:
        """Score a single entity and return the per-term breakdown."""
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        return self._require_scorer().score_document(parsed, entity_id)

    def _to_hit(self, result: ScoredDocument) -> SearchHit:
        return SearchHit(
            entity_id=result.doc_id,
            score=result.score,
            label=self._graph.label(result.doc_id),
        )

    # ------------------------------------------------------------------ #
    # Baseline scorers (used by the evaluation harness)
    # ------------------------------------------------------------------ #
    def bm25f_scorer(self) -> BM25FScorer:
        """A BM25F scorer over the same index and field weights."""
        return BM25FScorer(self._index, self._config.field_weights)

    def bm25_names_scorer(self) -> BM25FieldScorer:
        """A plain BM25 scorer restricted to the names field."""
        return BM25FieldScorer(self._index, "names")

    def single_field_scorer(self, field: str = "names") -> SingleFieldScorer:
        """A query-likelihood scorer over a single field."""
        return SingleFieldScorer(self._index, field, self._config)
