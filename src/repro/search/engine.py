"""The entity search engine (Fig 2, §2.2).

Wires together document construction, analysis, the fielded inverted index
and the mixture-of-language-models scorer into a single object the PivotE
facade (and the examples) can use:

>>> engine = SearchEngine.from_graph(kg)
>>> hits = engine.search("forrest gump")
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SearchConfig
from ..index import FieldedIndex
from ..kg import KnowledgeGraph
from ..utils import LRUCache
from .bm25 import BM25FScorer, BM25FieldScorer
from .fields import (
    FieldedEntityDocument,
    analyze_document,
    build_all_documents,
    build_entity_document,
)
from .mlm import MixtureLanguageModelScorer, ScoredDocument, SingleFieldScorer
from .query import KeywordQuery, parse_query


@dataclass(frozen=True)
class SearchHit:
    """One search result: the entity, its score and its display label."""

    entity_id: str
    score: float
    label: str

    def as_dict(self) -> dict[str, object]:
        return {"entity": self.entity_id, "score": self.score, "label": self.label}


class SearchEngine:
    """Keyword entity search over a knowledge graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: SearchConfig | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or SearchConfig()
        self._documents: dict[str, FieldedEntityDocument] = {}
        self._index = FieldedIndex(self._config.fields)
        self._scorer: MixtureLanguageModelScorer | None = None
        #: LRU query-result cache: keyed by the parsed query, requested k and
        #: the index epoch (so direct index mutations can never serve stale
        #: hits); cleared explicitly on every engine-level mutation.
        self._result_cache: LRUCache[tuple[object, ...], tuple[SearchHit, ...]] = LRUCache(
            self._config.result_cache_size
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph, config: SearchConfig | None = None) -> "SearchEngine":
        """Build and index the search engine for a whole graph."""
        engine = cls(graph, config=config)
        engine.build()
        return engine

    def build(self) -> "SearchEngine":
        """(Re)build the index from the graph's current contents."""
        self._documents = build_all_documents(self._graph)
        self._index = FieldedIndex(self._config.fields)
        for entity_id, document in self._documents.items():
            self._index.add_document(entity_id, analyze_document(document))
        self._scorer = MixtureLanguageModelScorer(self._index, self._config)
        self._result_cache.clear()
        return self

    def add_entity(self, entity_id: str) -> None:
        """Index (or re-index) one entity after the graph changed."""
        document = build_entity_document(self._graph, entity_id)
        self._documents[entity_id] = document
        self._index.add_document(entity_id, analyze_document(document))
        self._result_cache.clear()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> FieldedIndex:
        """The underlying fielded inverted index."""
        return self._index

    @property
    def config(self) -> SearchConfig:
        return self._config

    def document(self, entity_id: str) -> FieldedEntityDocument:
        """The five-field document of an entity (Table 1)."""
        if entity_id not in self._documents:
            self._documents[entity_id] = build_entity_document(self._graph, entity_id)
        return self._documents[entity_id]

    def num_indexed(self) -> int:
        """Number of indexed entities."""
        return self._index.num_documents

    def _require_scorer(self) -> MixtureLanguageModelScorer:
        if self._scorer is None:
            self.build()
        assert self._scorer is not None
        return self._scorer

    @property
    def mlm_scorer(self) -> MixtureLanguageModelScorer:
        """The primary mixture-of-language-models scorer (built on demand)."""
        return self._require_scorer()

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: str | KeywordQuery, top_k: int | None = None) -> list[SearchHit]:
        """Retrieve the top-k entities for a keyword query.

        Repeated queries are served from an LRU result cache; the cache key
        includes the index epoch and the cache is cleared by :meth:`build`
        and :meth:`add_entity`, so mutations always invalidate it.
        """
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        scorer = self._require_scorer()  # may (re)build the index: key needs the final epoch
        key = self._cache_key(parsed, top_k)
        if key is not None:
            cached = self._result_cache.get(key)
            if cached is not None:
                return list(cached)
        hits = [self._to_hit(result) for result in scorer.search(parsed, top_k=top_k)]
        if key is not None:
            self._result_cache.put(key, tuple(hits))
        return hits

    def _cache_key(
        self, parsed: KeywordQuery, top_k: int | None
    ) -> tuple[object, ...] | None:
        """The result-cache key for a parsed query, or ``None`` when disabled."""
        if self._config.result_cache_size <= 0:
            return None
        restrictions = tuple(
            (field, terms) for field, terms in parsed.field_restrictions.items()
        )
        return (parsed.terms, restrictions, top_k or self._config.top_k, self._index.epoch)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the LRU result cache."""
        return self._result_cache.cache_info()

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters of the primary (MLM) scorer."""
        return self._require_scorer().pruning_info()

    def explain(self, query: str | KeywordQuery, entity_id: str) -> ScoredDocument:
        """Score a single entity and return the per-term breakdown."""
        parsed = query if isinstance(query, KeywordQuery) else parse_query(query)
        return self._require_scorer().score_document(parsed, entity_id)

    def _to_hit(self, result: ScoredDocument) -> SearchHit:
        return SearchHit(
            entity_id=result.doc_id,
            score=result.score,
            label=self._graph.label(result.doc_id),
        )

    # ------------------------------------------------------------------ #
    # Baseline scorers (used by the evaluation harness)
    # ------------------------------------------------------------------ #
    def bm25f_scorer(self) -> BM25FScorer:
        """A BM25F scorer over the same index and field weights."""
        return BM25FScorer(self._index, self._config.field_weights, pruning=self._config.pruning)

    def bm25_names_scorer(self) -> BM25FieldScorer:
        """A plain BM25 scorer restricted to the names field."""
        return BM25FieldScorer(self._index, "names", pruning=self._config.pruning)

    def single_field_scorer(self, field: str = "names") -> SingleFieldScorer:
        """A query-likelihood scorer over a single field."""
        return SingleFieldScorer(self._index, field, self._config)
