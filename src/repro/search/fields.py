"""The five-field entity representation of Table 1.

Every entity is described by five textual fields:

=====================  =====================================================
Field                  Content
=====================  =====================================================
names                  the entity's labels
attributes             its literal values ("142 minutes", "55 million dollars")
categories             the labels of its categories
similar_entity_names   labels of redirected and disambiguated entities
related_entity_names   labels of the connected entities
=====================  =====================================================

The :class:`FieldedEntityDocument` holds the raw text per field;
:func:`build_entity_document` derives it from the knowledge graph, and
:func:`analyze_document` turns it into term lists ready for indexing.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..config import DEFAULT_FIELDS
from ..kg import KnowledgeGraph, label_from_identifier
from ..text import Analyzer, NAME_ANALYZER, TEXT_ANALYZER

#: Canonical field names, re-exported for convenience.
FIELD_NAMES = "names"
FIELD_ATTRIBUTES = "attributes"
FIELD_CATEGORIES = "categories"
FIELD_SIMILAR = "similar_entity_names"
FIELD_RELATED = "related_entity_names"

#: Analyzer used per field.  Name-like fields keep stopwords, text fields
#: are stopword-filtered and stemmed.
FIELD_ANALYZERS: Mapping[str, Analyzer] = {
    FIELD_NAMES: NAME_ANALYZER,
    FIELD_ATTRIBUTES: TEXT_ANALYZER,
    FIELD_CATEGORIES: TEXT_ANALYZER,
    FIELD_SIMILAR: NAME_ANALYZER,
    FIELD_RELATED: NAME_ANALYZER,
}


@dataclass(frozen=True)
class FieldedEntityDocument:
    """The multi-fielded textual representation of one entity."""

    entity_id: str
    fields: Mapping[str, Sequence[str]] = field(default_factory=dict)

    def field_text(self, name: str) -> Sequence[str]:
        """Raw text snippets of one field (empty when the field is absent)."""
        return self.fields.get(name, ())

    def joined(self, name: str) -> str:
        """The field's snippets joined into a single string."""
        return " ".join(self.field_text(name))

    def all_text(self) -> str:
        """All fields concatenated; used by the single-field LM baseline."""
        return " ".join(self.joined(name) for name in DEFAULT_FIELDS)

    def as_table(self) -> list[tuple[str, str]]:
        """(field, content) rows mirroring Table 1 of the paper."""
        return [(name, ", ".join(self.field_text(name))) for name in DEFAULT_FIELDS]


def build_entity_document(graph: KnowledgeGraph, entity_id: str) -> FieldedEntityDocument:
    """Derive the five-field document of an entity from the knowledge graph."""
    graph.require_entity(entity_id)

    names: list[str] = list(graph.labels_of(entity_id))
    if not names:
        names = [label_from_identifier(entity_id)]

    attributes: list[str] = []
    for _, values in sorted(graph.attributes_of(entity_id).items()):
        attributes.extend(values)

    categories = [label_from_identifier(category) for category in sorted(graph.categories_of(entity_id))]

    similar = [graph.label(alias) for alias in sorted(graph.aliases_of(entity_id))]

    related_ids: list[str] = []
    seen: set[str] = set()
    for _, target in graph.outgoing(entity_id):
        if target not in seen:
            seen.add(target)
            related_ids.append(target)
    for _, source in graph.incoming(entity_id):
        if source not in seen:
            seen.add(source)
            related_ids.append(source)
    related = [graph.label(related_id) for related_id in related_ids]

    return FieldedEntityDocument(
        entity_id=entity_id,
        fields={
            FIELD_NAMES: tuple(names),
            FIELD_ATTRIBUTES: tuple(attributes),
            FIELD_CATEGORIES: tuple(categories),
            FIELD_SIMILAR: tuple(similar),
            FIELD_RELATED: tuple(related),
        },
    )


def analyze_document(document: FieldedEntityDocument) -> dict[str, list[str]]:
    """Analyze every field of a document into index-ready terms."""
    analyzed: dict[str, list[str]] = {}
    for name in DEFAULT_FIELDS:
        analyzer = FIELD_ANALYZERS[name]
        analyzed[name] = analyzer.analyze_all(document.field_text(name))
    return analyzed


def build_all_documents(graph: KnowledgeGraph) -> dict[str, FieldedEntityDocument]:
    """Build the five-field document for every entity in the graph."""
    return {
        entity_id: build_entity_document(graph, entity_id)
        for entity_id in sorted(graph.entities())
    }
