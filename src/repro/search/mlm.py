"""Mixture of Language Models (MLM) retrieval over fielded entity documents.

This is the retrieval model of §2.2: "the retrieval score of a structured
document is a linear combination of probabilities of query terms in the
language models calculated for each document field".  Concretely, for a
query ``q = t1 .. tn`` and an entity document ``d`` with fields ``f``:

    score(d, q) = sum_t log( sum_f w_f * p(t | d_f) )

where ``p(t | d_f)`` is the smoothed field language model and the field
weights ``w_f`` sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..config import SearchConfig
from ..index import FieldedIndex
from .language_model import SmoothingParams, log_probability, smoothed_probability
from .query import KeywordQuery


@dataclass(frozen=True)
class ScoredDocument:
    """A retrieval result: document identifier, score and per-term detail."""

    doc_id: str
    score: float
    term_scores: Mapping[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.term_scores is None:
            object.__setattr__(self, "term_scores", {})


class MixtureLanguageModelScorer:
    """Scores documents of a :class:`FieldedIndex` against keyword queries."""

    def __init__(self, index: FieldedIndex, config: SearchConfig | None = None) -> None:
        self._index = index
        self._config = config or SearchConfig()
        weights = dict(self._config.field_weights)
        total = sum(weights.get(field, 0.0) for field in index.fields)
        if total <= 0:
            raise ValueError("field weights must have positive mass over the index fields")
        #: Normalised weights restricted to the index's fields.
        self._weights: Dict[str, float] = {
            field: weights.get(field, 0.0) / total for field in index.fields
        }
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )

    @property
    def field_weights(self) -> Mapping[str, float]:
        """The normalised field weights actually used for scoring."""
        return dict(self._weights)

    def term_probability(self, term: str, doc_id: str) -> float:
        """Mixture probability ``sum_f w_f * p(term | d_f)``."""
        probability = 0.0
        for field, weight in self._weights.items():
            if weight == 0.0:
                continue
            tf = self._index.term_frequency(field, term, doc_id)
            doc_len = self._index.document_length(field, doc_id)
            collection_p = self._index.collection_probability(field, term)
            probability += weight * smoothed_probability(
                tf, doc_len, collection_p, self._smoothing
            )
        return probability

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        """Score one document: sum of log mixture probabilities over terms.

        Field restrictions (``names:gump``) are honoured by scoring the
        restricted terms only within their field.
        """
        term_scores: Dict[str, float] = {}
        score = 0.0
        for term in query.terms:
            log_p = log_probability(self.term_probability(term, doc_id))
            term_scores[term] = log_p
            score += log_p
        for field, terms in query.field_restrictions.items():
            for term in terms:
                tf = self._index.term_frequency(field, term, doc_id)
                doc_len = self._index.document_length(field, doc_id)
                collection_p = self._index.collection_probability(field, term)
                p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
                log_p = log_probability(p)
                term_scores[f"{field}:{term}"] = log_p
                score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        """Rank candidate documents for the query and return the top ``k``."""
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]


class SingleFieldScorer:
    """Baseline: query-likelihood over one catch-all field.

    Used by the E7 experiment to show the benefit of the five-field mixture
    over indexing all entity text into a single field.
    """

    def __init__(self, index: FieldedIndex, field: str, config: SearchConfig | None = None) -> None:
        self._index = index
        self._field = field
        self._config = config or SearchConfig()
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        score = 0.0
        term_scores: Dict[str, float] = {}
        for term in query.all_terms():
            tf = self._index.term_frequency(self._field, term, doc_id)
            doc_len = self._index.document_length(self._field, doc_id)
            collection_p = self._index.collection_probability(self._field, term)
            p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
            log_p = log_probability(p)
            term_scores[term] = log_p
            score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]
