"""Mixture of Language Models (MLM) retrieval over fielded entity documents.

This is the retrieval model of §2.2: "the retrieval score of a structured
document is a linear combination of probabilities of query terms in the
language models calculated for each document field".  Concretely, for a
query ``q = t1 .. tn`` and an entity document ``d`` with fields ``f``:

    score(d, q) = sum_t log( sum_f w_f * p(t | d_f) )

where ``p(t | d_f)`` is the smoothed field language model and the field
weights ``w_f`` sum to one.

Retrieval runs term-at-a-time: each query term's statistics are resolved
once, every candidate's accumulator is updated, and the top-k is selected
with a bounded heap (see :mod:`repro.index.scoring_support`).  The
exhaustive score-all-then-sort path is kept as ``search_exhaustive`` for
A/B benchmarking; both paths produce byte-identical rankings because they
perform the same floating-point operations in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, MutableMapping, Sequence, Tuple

from ..config import SearchConfig
from ..index import FieldedIndex, select_top_k
from ..index.scoring_support import ScoringSupport
from .language_model import SmoothingParams, log_probability, smoothed_probability
from .query import KeywordQuery


def _accumulate_mixture_term(
    accumulators: MutableMapping[str, float],
    term: str,
    weighted_fields: Sequence[Tuple[str, float]],
    support: ScoringSupport,
    smoothing: SmoothingParams,
) -> None:
    """Add one term's log mixture probability to every open accumulator.

    The per-(field, term) statistics — posting frequencies, document-length
    arrays and the smoothing mass ``mu * p(t|C)`` (resp. ``lambda * p(t|C)``)
    — are resolved once here, then reused across all candidate documents.
    The arithmetic mirrors :func:`~repro.search.language_model.smoothed_probability`
    operation-for-operation so accumulator scores match exhaustive scores
    exactly.
    """
    if smoothing.method == "dirichlet":
        mu = smoothing.dirichlet_mu
        components = [
            (
                weight,
                support.postings_frequencies(field, term),
                support.field_lengths(field),
                mu * support.collection_probability(field, term),
            )
            for field, weight in weighted_fields
        ]
        for doc_id, partial in accumulators.items():
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                probability += weight * (
                    (frequencies.get(doc_id, 0) + mass) / (lengths.get(doc_id, 0) + mu)
                )
            accumulators[doc_id] = partial + log_probability(probability)
    else:  # jelinek-mercer
        lam = smoothing.jm_lambda
        one_minus_lam = 1.0 - lam
        components = [
            (
                weight,
                support.postings_frequencies(field, term),
                support.field_lengths(field),
                lam * support.collection_probability(field, term),
            )
            for field, weight in weighted_fields
        ]
        for doc_id, partial in accumulators.items():
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                doc_len = lengths.get(doc_id, 0)
                if doc_len > 0:
                    probability += weight * (
                        one_minus_lam * (frequencies.get(doc_id, 0) / doc_len) + mass
                    )
                else:
                    probability += weight * mass
            accumulators[doc_id] = partial + log_probability(probability)


@dataclass(frozen=True)
class ScoredDocument:
    """A retrieval result: document identifier, score and per-term detail."""

    doc_id: str
    score: float
    term_scores: Mapping[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.term_scores is None:
            object.__setattr__(self, "term_scores", {})


class MixtureLanguageModelScorer:
    """Scores documents of a :class:`FieldedIndex` against keyword queries."""

    def __init__(self, index: FieldedIndex, config: SearchConfig | None = None) -> None:
        self._index = index
        self._config = config or SearchConfig()
        weights = dict(self._config.field_weights)
        total = sum(weights.get(field, 0.0) for field in index.fields)
        if total <= 0:
            raise ValueError("field weights must have positive mass over the index fields")
        #: Normalised weights restricted to the index's fields.
        self._weights: Dict[str, float] = {
            field: weights.get(field, 0.0) / total for field in index.fields
        }
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )

    @property
    def field_weights(self) -> Mapping[str, float]:
        """The normalised field weights actually used for scoring."""
        return dict(self._weights)

    def term_probability(self, term: str, doc_id: str) -> float:
        """Mixture probability ``sum_f w_f * p(term | d_f)``."""
        probability = 0.0
        for field, weight in self._weights.items():
            if weight == 0.0:
                continue
            tf = self._index.term_frequency(field, term, doc_id)
            doc_len = self._index.document_length(field, doc_id)
            collection_p = self._index.collection_probability(field, term)
            probability += weight * smoothed_probability(
                tf, doc_len, collection_p, self._smoothing
            )
        return probability

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        """Score one document: sum of log mixture probabilities over terms.

        Field restrictions (``names:gump``) are honoured by scoring the
        restricted terms only within their field.
        """
        term_scores: Dict[str, float] = {}
        score = 0.0
        for term in query.terms:
            log_p = log_probability(self.term_probability(term, doc_id))
            term_scores[term] = log_p
            score += log_p
        for field, terms in query.field_restrictions.items():
            for term in terms:
                tf = self._index.term_frequency(field, term, doc_id)
                doc_len = self._index.document_length(field, doc_id)
                collection_p = self._index.collection_probability(field, term)
                p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
                log_p = log_probability(p)
                term_scores[f"{field}:{term}"] = log_p
                score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        """Rank candidate documents term-at-a-time and return the top ``k``.

        Walks each query term's postings once, accumulating partial log
        probabilities per candidate, then selects the top-k with a bounded
        heap.  Only the selected documents are re-scored through
        :meth:`score_document` to materialise their per-term breakdown, so
        the output is identical to :meth:`search_exhaustive`.
        """
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        accumulators = dict.fromkeys(candidates, 0.0)
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        for term in query.terms:
            _accumulate_mixture_term(accumulators, term, weighted_fields, support, self._smoothing)
        for field, terms in query.field_restrictions.items():
            for term in terms:
                _accumulate_mixture_term(
                    accumulators, term, ((field, 1.0),), support, self._smoothing
                )
        top = select_top_k(accumulators, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def search_exhaustive(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path).

        Kept as the reference implementation for equivalence tests and the
        accumulator-vs-exhaustive A/B benchmark mode.
        """
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]


class SingleFieldScorer:
    """Baseline: query-likelihood over one catch-all field.

    Used by the E7 experiment to show the benefit of the five-field mixture
    over indexing all entity text into a single field.
    """

    def __init__(self, index: FieldedIndex, field: str, config: SearchConfig | None = None) -> None:
        self._index = index
        self._field = field
        self._config = config or SearchConfig()
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        score = 0.0
        term_scores: Dict[str, float] = {}
        for term in query.all_terms():
            tf = self._index.term_frequency(self._field, term, doc_id)
            doc_len = self._index.document_length(self._field, doc_id)
            collection_p = self._index.collection_probability(self._field, term)
            p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
            log_p = log_probability(p)
            term_scores[term] = log_p
            score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        """Term-at-a-time ranking over the single field (see the MLM scorer)."""
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        accumulators = dict.fromkeys(candidates, 0.0)
        single_field = ((self._field, 1.0),)
        for term in query.all_terms():
            _accumulate_mixture_term(accumulators, term, single_field, support, self._smoothing)
        top = select_top_k(accumulators, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def search_exhaustive(self, query: KeywordQuery, top_k: int | None = None) -> List[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]
