"""Mixture of Language Models (MLM) retrieval over fielded entity documents.

This is the retrieval model of §2.2: "the retrieval score of a structured
document is a linear combination of probabilities of query terms in the
language models calculated for each document field".  Concretely, for a
query ``q = t1 .. tn`` and an entity document ``d`` with fields ``f``:

    score(d, q) = sum_t log( sum_f w_f * p(t | d_f) )

where ``p(t | d_f)`` is the smoothed field language model and the field
weights ``w_f`` sum to one.

Retrieval runs term-at-a-time: each query term's statistics are resolved
once, every candidate's accumulator is updated, and the top-k is selected
with a bounded heap (see :mod:`repro.index.scoring_support`).  The
exhaustive score-all-then-sort path is kept as ``search_exhaustive`` for
A/B benchmarking; both paths produce byte-identical rankings because they
perform the same floating-point operations in the same order.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping, MutableMapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..config import PRUNED_MODES, SearchConfig
from ..exec import (
    ProcessTask,
    ThetaSlab,
    default_executor,
    merge_shard_maps,
    merge_shard_stats,
    partition_candidates,
    resolve_executor,
    shard_stats_from,
    snapshot_registry,
)
from ..index import FieldedIndex, select_top_k
from ..index.columnar import ColumnarIndex, columnar_view
from ..index.scoring_support import ScoringSupport
from ..topk import (
    DenseKernelTerm,
    DenseTermEntry,
    PruningStats,
    SELECTION_MARGIN,
    SharedThreshold,
    accumulate_dense,
    columnar_dense,
    maxscore_dense,
    select_survivor_ordinals,
    select_survivors,
    threshold_of,
)
from ..topk.heap import NO_THRESHOLD
from .language_model import SmoothingParams, log_probability, smoothed_probability
from .query import KeywordQuery


def _accumulate_mixture_term(
    accumulators: MutableMapping[str, float],
    components: Sequence[tuple[float, Mapping[str, int], Mapping[str, int], float]],
    smoothing: SmoothingParams,
) -> None:
    """Add one term's log mixture probability to every open accumulator.

    ``components`` carries the per-(field, term) statistics — posting
    frequencies, document-length arrays and the smoothing mass
    ``mu * p(t|C)`` (resp. ``lambda * p(t|C)``) — resolved once per query
    term by :func:`_term_components` and reused across all candidate
    documents (and, in the sharded fan-out, across every shard worker).
    The arithmetic mirrors :func:`~repro.search.language_model.smoothed_probability`
    operation-for-operation so accumulator scores match exhaustive scores
    exactly.
    """
    if smoothing.method == "dirichlet":
        mu = smoothing.dirichlet_mu
        for doc_id, partial in accumulators.items():
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                probability += weight * (
                    (frequencies.get(doc_id, 0) + mass) / (lengths.get(doc_id, 0) + mu)
                )
            accumulators[doc_id] = partial + log_probability(probability)
    else:  # jelinek-mercer
        one_minus_lam = 1.0 - smoothing.jm_lambda
        for doc_id, partial in accumulators.items():
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                doc_len = lengths.get(doc_id, 0)
                if doc_len > 0:
                    probability += weight * (
                        one_minus_lam * (frequencies.get(doc_id, 0) / doc_len) + mass
                    )
                else:
                    probability += weight * mass
            accumulators[doc_id] = partial + log_probability(probability)


class LanguageModelBounds:
    """Per-(field, term) smoothed-probability bounds for the LM scorers.

    Implements the :class:`~repro.topk.bounds.ScorerBounds` protocol: for
    every candidate document, the smoothed mixture component of ``term`` in
    ``field`` lies in ``[field_floor, field_upper]``.  The floor is the
    *background* probability mass smoothing grants every document — the
    decomposition that lets max-score pruning evict candidates even though
    smoothing scores all of them:

    * Dirichlet: ``p(t|d) = (tf + mu·p_c) / (|d| + mu)`` is maximised by
      the largest tf over the shortest field and floored by a zero tf over
      the longest field;
    * Jelinek-Mercer: ``p(t|d) = (1-λ)·tf/|d| + λ·p_c`` is bounded above
      by ``(1-λ)·1 + λ·p_c`` (``tf <= |d|``) when the field contains the
      term at all, and floored by the collection mass ``λ·p_c``.

    Field bounds are memoised on :class:`CollectionStatistics` (keyed by
    smoothing method and parameter), so they live exactly as long as the
    index epoch they were derived from.
    """

    __slots__ = ("_support", "_smoothing")

    def __init__(self, support: ScoringSupport, smoothing: SmoothingParams) -> None:
        self._support = support
        self._smoothing = smoothing

    def _compute_field_bound(self, field: str, term: str, which: str) -> float:
        smoothing = self._smoothing
        field_stats = self._support.statistics.field(field)
        probability = field_stats.collection_probability(term)
        if smoothing.method == "dirichlet":
            mu = smoothing.dirichlet_mu
            mass = mu * probability
            if which == "upper":
                return (field_stats.max_frequency(term) + mass) / (field_stats.min_length + mu)
            return mass / (field_stats.max_length + mu)
        lam = smoothing.jm_lambda
        mass = lam * probability
        if which == "upper":
            return (1.0 - lam) * (1.0 if field_stats.max_frequency(term) > 0 else 0.0) + mass
        return mass

    def _field_bounds(self, field: str, term: str) -> tuple[float, float]:
        smoothing = self._smoothing
        statistics = self._support.statistics
        if smoothing.method == "dirichlet":
            key = ("lm-dirichlet", smoothing.dirichlet_mu, field, term)
        else:
            key = ("lm-jm", smoothing.jm_lambda, field, term)
        floor = statistics.memoised_bound(
            key + ("floor",), lambda: self._compute_field_bound(field, term, "floor")
        )
        upper = statistics.memoised_bound(
            key + ("upper",), lambda: self._compute_field_bound(field, term, "upper")
        )
        return floor, upper

    def term_floor(self, field: str, term: str) -> float:
        return self._field_bounds(field, term)[0]

    def term_upper(self, field: str, term: str) -> float:
        return self._field_bounds(field, term)[1]

    def mixture_bounds(
        self, term: str, weighted_fields: Sequence[tuple[str, float]]
    ) -> tuple[float, float]:
        """Bounds of the full log mixture contribution of one query term."""
        floor_mass = 0.0
        upper_mass = 0.0
        for field, weight in weighted_fields:
            floor, upper = self._field_bounds(field, term)
            floor_mass += weight * floor
            upper_mass += weight * upper
        return log_probability(floor_mass), log_probability(upper_mass)


def _rank_key(item: tuple[str, float]) -> tuple[float, str]:
    doc_id, score = item
    return (-score, doc_id)


def _term_components(
    term: str,
    weighted_fields: Sequence[tuple[str, float]],
    support: ScoringSupport,
    smoothing: SmoothingParams,
) -> list[tuple[float, Mapping[str, int], Mapping[str, int], float]]:
    """The per-field lookup tuples one term's scoring needs, resolved once."""
    if smoothing.method == "dirichlet":
        factor = smoothing.dirichlet_mu
    else:
        factor = smoothing.jm_lambda
    return [
        (
            weight,
            support.postings_frequencies(field, term),
            support.field_lengths(field),
            factor * support.collection_probability(field, term),
        )
        for field, weight in weighted_fields
    ]


def _rescore_mixture(
    doc_ids: Sequence[str],
    per_term: Sequence[list[tuple[float, Mapping[str, int], Mapping[str, int], float]]],
    smoothing: SmoothingParams,
) -> list[tuple[str, float]]:
    """Exact scores of a few documents through the fast support lookups.

    ``per_term`` must list each scored term's components in *scoring*
    order (query terms, then field restrictions): the summation order and
    per-term arithmetic mirror :meth:`MixtureLanguageModelScorer.score_document`
    operation-for-operation, so the returned scores are bitwise identical
    to the exhaustive path without its per-call index lookups.
    """
    results: list[tuple[str, float]] = []
    if smoothing.method == "dirichlet":
        mu = smoothing.dirichlet_mu
        for doc_id in doc_ids:
            score = 0.0
            for components in per_term:
                probability = 0.0
                for weight, frequencies, lengths, mass in components:
                    probability += weight * (
                        (frequencies.get(doc_id, 0) + mass) / (lengths.get(doc_id, 0) + mu)
                    )
                score += log_probability(probability)
            results.append((doc_id, score))
    else:  # jelinek-mercer
        one_minus_lam = 1.0 - smoothing.jm_lambda
        for doc_id in doc_ids:
            score = 0.0
            for components in per_term:
                probability = 0.0
                for weight, frequencies, lengths, mass in components:
                    doc_len = lengths.get(doc_id, 0)
                    if doc_len > 0:
                        probability += weight * (
                            one_minus_lam * (frequencies.get(doc_id, 0) / doc_len) + mass
                        )
                    else:
                        probability += weight * mass
                score += log_probability(probability)
            results.append((doc_id, score))
    return results


def _prime_threshold(
    per_term: Sequence[list[tuple[float, Mapping[str, int], Mapping[str, int], float]]],
    smoothing: SmoothingParams,
    top_k: int,
) -> float:
    """An initial θ from a subset pool of promising candidates.

    The dense traversal's partial-plus-floor θ is loose on the early
    passes (the floor assumes a zero term frequency over the longest
    field).  This primes θ the way the recommendation side's type-group
    subset pool does: take each term's highest-tf documents per scored
    field, score that small pool *exactly* through the fast support
    lookups, and use its k-th best final score — a valid θ witness set,
    because every pool document is a real candidate and exact final
    scores are their own lower bounds.  Returns ``-inf`` when fewer than
    ``top_k`` pool documents exist (nothing can be primed soundly).
    """
    # Rarest postings first: a document with a high tf for a rare term
    # collects that term's large log boost while the rest of the pool
    # pays the smoothing floor, so these are the likeliest true top
    # scorers.  Postings lists beyond ``4 * top_k`` documents are never
    # scanned — selecting witnesses from them would cost a heap pass over
    # the very lists the traversal is trying not to walk twice, and their
    # spread is what the partial-plus-floor θ already captures.  When no
    # k cheap witnesses exist, priming is skipped (returns ``-inf``) and
    # the traversal runs exactly like ``maxscore``.
    budget = 4 * top_k
    postings_by_rarity = sorted(
        (
            frequencies
            for components in per_term
            for _, frequencies, _, _ in components
            if frequencies and len(frequencies) <= budget
        ),
        key=len,
    )
    pool: set[str] = set()
    for frequencies in postings_by_rarity:
        if len(frequencies) <= top_k:
            pool.update(frequencies)
        else:
            pool.update(heapq.nlargest(top_k, frequencies, key=frequencies.__getitem__))
        if len(pool) >= top_k:
            break
    if len(pool) < top_k:
        return NO_THRESHOLD
    scored = _rescore_mixture(sorted(pool), per_term, smoothing)
    return threshold_of((score for _, score in scored), top_k)


def _accumulate_mixture_term_pruned(
    accumulators: MutableMapping[str, float],
    cut: float,
    components: Sequence[tuple[float, Mapping[str, int], Mapping[str, int], float]],
    smoothing: SmoothingParams,
) -> MutableMapping[str, float]:
    """The fused pruning variant of :func:`_accumulate_mixture_term`.

    Adds the term's exact log mixture contribution in place, evicting
    candidates whose partial fell below the ``cut`` the driver derived
    from θ — evicted candidates skip the per-field probability
    arithmetic, which is what makes smoothing stop forcing a full score
    of every document.
    """
    if cut == float("-inf"):
        _accumulate_mixture_term(accumulators, components, smoothing)
        return accumulators
    doomed: list[str] = []
    if smoothing.method == "dirichlet":
        mu = smoothing.dirichlet_mu
        for doc_id, partial in accumulators.items():
            if partial < cut:
                doomed.append(doc_id)
                continue
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                probability += weight * (
                    (frequencies.get(doc_id, 0) + mass) / (lengths.get(doc_id, 0) + mu)
                )
            accumulators[doc_id] = partial + log_probability(probability)
    else:  # jelinek-mercer
        one_minus_lam = 1.0 - smoothing.jm_lambda
        for doc_id, partial in accumulators.items():
            if partial < cut:
                doomed.append(doc_id)
                continue
            probability = 0.0
            for weight, frequencies, lengths, mass in components:
                doc_len = lengths.get(doc_id, 0)
                if doc_len > 0:
                    probability += weight * (
                        one_minus_lam * (frequencies.get(doc_id, 0) / doc_len) + mass
                    )
                else:
                    probability += weight * mass
            accumulators[doc_id] = partial + log_probability(probability)
    for doc_id in doomed:
        del accumulators[doc_id]
    return accumulators


def _sharded_dense_survivors(
    shards: Sequence[Sequence[str]],
    entries: Sequence[DenseTermEntry],
    top_k: int,
    stats: PruningStats,
    prime_threshold: float,
    executor=None,
) -> list[str]:
    """Fan the dense traversal out over candidate shards; union the picks.

    Each shard worker runs :func:`maxscore_dense` over its own candidate
    bucket with a private :class:`PruningStats` (merged afterwards, the
    logical query counted once) and a slot on the shared θ broadcast —
    every shard offers its top-k partial-plus-floor bounds and prunes
    with the k-th best over all offers, which recovers the θ the serial
    traversal derives from the merged pool (a caller-supplied primed θ
    seeds the broadcast).

    The merge distinguishes how each shard's traversal ended.  A shard
    that ran every term pass holds *exact* accumulator values — the same
    floats the serial walk computes for those candidates — so the exact
    maps are merged and the top ``k + margin`` selected globally, exactly
    like the serial epilogue.  A shard that early-stopped (at most
    ``k + margin`` survivors left) holds possibly-partial values that are
    only meaningful within its own traversal, so *all* of its survivors
    join the union wholesale.  Either way the union contains the global
    top-k, the caller re-scores it exactly, and the final ranking stays
    byte-identical to the 1-shard path — while the re-scoring bill stays
    ~``k + margin`` instead of shards × (``k + margin``).
    """
    shared = SharedThreshold(top_k, initial=prime_threshold)

    def worker(shard: Sequence[str]) -> tuple[dict[str, float], PruningStats]:
        local = PruningStats()
        survivors = maxscore_dense(shard, entries, top_k, local, shared=shared.slot())
        return survivors, local

    tasks = [lambda shard=shard: worker(shard) for shard in shards if shard]
    results = (executor or default_executor()).run(tasks)
    merge_shard_stats(stats, [local for _, local in results])
    stop_budget = top_k + SELECTION_MARGIN  # the driver's early-stop bound
    exact: dict[str, float] = {}
    union: list[str] = []
    for survivors, _ in results:
        if len(survivors) <= stop_budget:
            union.extend(survivors)
        else:
            exact.update(survivors)
    union.extend(select_survivors(exact, top_k))
    return union


def _columnar_term_column(
    view: ColumnarIndex,
    support: ScoringSupport,
    term: str,
    weighted_fields: Sequence[tuple[str, float]],
    smoothing: SmoothingParams,
) -> np.ndarray:
    """One term's exact log-mixture contribution for every ordinal.

    The vectorized sibling of :func:`_accumulate_mixture_term`: the same
    per-field smoothing arithmetic broadcast over the whole document
    column (elementwise numpy arithmetic is IEEE-identical to the scalar
    expressions; only ``np.log`` may differ from ``math.log`` by ulps,
    which the drivers' safety slack and the exact re-scoring epilogue
    absorb).  Memoised on the view — i.e. per (term, fields, smoothing)
    per index epoch — like the scalar path's memoised bounds.
    """
    if smoothing.method == "dirichlet":
        key = ("lm-column", "dirichlet", smoothing.dirichlet_mu, tuple(weighted_fields), term)
    else:
        key = ("lm-column", "jm", smoothing.jm_lambda, tuple(weighted_fields), term)

    def compute() -> np.ndarray:
        probability = np.zeros(view.num_documents, dtype=np.float64)
        if smoothing.method == "dirichlet":
            mu = smoothing.dirichlet_mu
            for field, weight in weighted_fields:
                mass = mu * support.collection_probability(field, term)
                frequencies = view.dense_frequencies(field, term)
                lengths = view.field_lengths(field)
                probability += weight * ((frequencies + mass) / (lengths + mu))
        else:  # jelinek-mercer
            one_minus_lam = 1.0 - smoothing.jm_lambda
            for field, weight in weighted_fields:
                mass = smoothing.jm_lambda * support.collection_probability(field, term)
                frequencies = view.dense_frequencies(field, term)
                lengths = view.field_lengths(field)
                # Zero-length documents fall back to the collection mass
                # (0.0 * anything + mass == mass, bitwise).
                ratio = np.divide(
                    frequencies, lengths, out=np.zeros_like(frequencies), where=lengths > 0
                )
                probability += weight * (one_minus_lam * ratio + mass)
        # The 1e-12 probability floor of ``log_probability``.
        return np.log(np.maximum(probability, 1e-12))

    column = view.memoised(key, compute)
    assert isinstance(column, np.ndarray)
    return column


def _dense_kernel_entries(
    view: ColumnarIndex,
    support: ScoringSupport,
    smoothing: SmoothingParams,
    term_specs: Sequence[tuple[str, str, Sequence[tuple[str, float]]]],
) -> list[DenseKernelTerm]:
    """One vectorized kernel term per scored term, bounds attached."""
    bounds = LanguageModelBounds(support, smoothing)
    entries: list[DenseKernelTerm] = []
    for key, term, fields in term_specs:
        floor, upper = bounds.mixture_bounds(term, fields)
        entries.append(
            DenseKernelTerm(
                key=key,
                floor=floor,
                upper=upper,
                contributions=_columnar_term_column(view, support, term, fields, smoothing),
            )
        )
    return entries


def _merge_dense_shard_survivors(results, top_k: int) -> np.ndarray:
    """Union per-shard ``(ordinals, partials, counters)`` dense results.

    The scalar merge rule, vectorized: early-stopped shards (at most
    ``k + margin`` survivors left) contribute their survivors wholesale
    — their partials are not comparable across shards — while shards
    that ran every pass hold full-accumulation values, identical for the
    same candidate regardless of shard, and are selected globally.
    """
    stop_budget = top_k + SELECTION_MARGIN  # the driver's early-stop bound
    union: list[np.ndarray] = []
    exact_ordinals: list[np.ndarray] = []
    exact_partials: list[np.ndarray] = []
    for ordinals, partials, _ in results:
        if ordinals.size <= stop_budget:
            union.append(ordinals)
        else:
            exact_ordinals.append(ordinals)
            exact_partials.append(partials)
    if exact_ordinals:
        union.append(
            select_survivor_ordinals(
                np.concatenate(exact_ordinals), np.concatenate(exact_partials), top_k
            )
        )
    if not union:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(union)


def _dense_process_plan(
    index: FieldedIndex,
    support: ScoringSupport,
    smoothing: SmoothingParams,
    term_specs: Sequence[tuple[str, str, Sequence[tuple[str, float]]]],
) -> dict:
    """One dense query's picklable recipe bundle for the process tier.

    Carries only scalars: per-term bounds plus the per-field smoothing
    masses (``mu·p(t|C)`` resp. ``lambda·p(t|C)``), from which a worker
    rebuilds the exact contribution columns against its snapshot views
    (see :func:`repro.exec.procpool._dense_entries`).
    """
    bounds = LanguageModelBounds(support, smoothing)
    if smoothing.method == "dirichlet":
        method, param = "dirichlet", smoothing.dirichlet_mu
        factor = smoothing.dirichlet_mu
    else:
        method, param = "jm", smoothing.jm_lambda
        factor = smoothing.jm_lambda
    terms = []
    for key, term, fields in term_specs:
        floor, upper = bounds.mixture_bounds(term, fields)
        terms.append(
            {
                "key": key,
                "term": term,
                "floor": floor,
                "upper": upper,
                "fields": [
                    (field, weight, factor * support.collection_probability(field, term))
                    for field, weight in fields
                ],
            }
        )
    return {"index": index, "smoothing": (method, param), "terms": terms}


def _process_columnar_dense_survivors(
    view: ColumnarIndex,
    candidate_ordinals: np.ndarray,
    entries: list[DenseKernelTerm],
    top_k: int,
    stats: PruningStats,
    prime_threshold: float,
    num_shards: int,
    executor,
    plan: dict,
) -> np.ndarray | None:
    """Dispatch the dense shard fan-out to the multiprocess tier.

    The parent runs shard 0 inline (its fallback participates in the θ
    broadcast through its own slab slot); the remaining shards ship only
    their recipe payloads.  Returns ``None`` when the process tier cannot
    serve the query — snapshot publish failed, or fewer than two shards
    hold candidates — so the caller falls through to the thread/inline
    fan-out.
    """
    snapshot = snapshot_registry().publish(plan["index"], view)
    if snapshot is None:
        return None
    owners = view.shard_map(num_shards)[candidate_ordinals]
    buckets = [
        bucket
        for shard in range(num_shards)
        if (bucket := candidate_ordinals[owners == shard]).size
    ]
    if len(buckets) < 2:
        return None
    slab = ThetaSlab.create(top_k, len(buckets), primed=prime_threshold)
    try:
        tasks = []
        for slot, bucket in enumerate(buckets):
            payload = {
                "kind": "dense",
                "snapshot": snapshot.descriptor,
                "theta": slab.descriptor,
                "slot": slot,
                "top_k": top_k,
                "smoothing": plan["smoothing"],
                "terms": plan["terms"],
                "candidates": bucket,
            }

            def fallback(bucket=bucket, slot=slot):
                local = PruningStats()
                ordinals, partials = columnar_dense(
                    bucket, entries, top_k, local, shared=slab.slot(slot)
                )
                return ordinals, partials, local

            tasks.append(ProcessTask(payload, fallback))
        results = executor.run_tasks(tasks)
    finally:
        slab.close()
    merge_shard_stats(stats, [shard_stats_from(counters) for _, _, counters in results])
    return _merge_dense_shard_survivors(results, top_k)


def _sharded_columnar_dense_survivors(
    view: ColumnarIndex,
    candidate_ordinals: np.ndarray,
    entries: list[DenseKernelTerm],
    top_k: int,
    stats: PruningStats,
    prime_threshold: float,
    num_shards: int,
    executor=None,
    process_plan: dict | None = None,
) -> np.ndarray:
    """The columnar twin of :func:`_sharded_dense_survivors`.

    Candidate ordinals are partitioned with the view's CRC shard map
    (identical routing to the scalar partitioners); each worker runs the
    dense kernel with a slot on the shared θ broadcast.  With a process
    executor and a recipe plan the fan-out goes to the multiprocess tier
    first (falling back here if the snapshot cannot be served).  The
    merge keeps the scalar rule either way — see
    :func:`_merge_dense_shard_survivors` — so rankings stay
    byte-identical across executor tiers.
    """
    executor = executor or default_executor()
    if process_plan is not None and getattr(executor, "is_process", False):
        picked = _process_columnar_dense_survivors(
            view,
            candidate_ordinals,
            entries,
            top_k,
            stats,
            prime_threshold,
            num_shards,
            executor,
            process_plan,
        )
        if picked is not None:
            return picked
    shared = SharedThreshold(top_k, initial=prime_threshold)
    owners = view.shard_map(num_shards)[candidate_ordinals]

    def worker(shard_ordinals: np.ndarray):
        local = PruningStats()
        ordinals, partials = columnar_dense(
            shard_ordinals, entries, top_k, local, shared=shared.slot()
        )
        return ordinals, partials, local

    buckets = [candidate_ordinals[owners == shard] for shard in range(num_shards)]
    tasks = [lambda bucket=bucket: worker(bucket) for bucket in buckets if bucket.size]
    results = executor.run(tasks)
    merge_shard_stats(stats, [local for _, _, local in results])
    return _merge_dense_shard_survivors(results, top_k)


@dataclass(frozen=True)
class ScoredDocument:
    """A retrieval result: document identifier, score and per-term detail."""

    doc_id: str
    score: float
    term_scores: Mapping[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.term_scores is None:
            object.__setattr__(self, "term_scores", {})


class MixtureLanguageModelScorer:
    """Scores documents of a :class:`FieldedIndex` against keyword queries."""

    def __init__(self, index: FieldedIndex, config: SearchConfig | None = None) -> None:
        self._index = index
        self._config = config or SearchConfig()
        weights = dict(self._config.field_weights)
        total = sum(weights.get(field, 0.0) for field in index.fields)
        if total <= 0:
            raise ValueError("field weights must have positive mass over the index fields")
        #: Normalised weights restricted to the index's fields.
        self._weights: dict[str, float] = {
            field: weights.get(field, 0.0) / total for field in index.fields
        }
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )
        self._pruning_stats = PruningStats()

    @property
    def index(self) -> FieldedIndex:
        """The index snapshot this scorer was built over."""
        return self._index

    @property
    def field_weights(self) -> Mapping[str, float]:
        """The normalised field weights actually used for scoring."""
        return dict(self._weights)

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the config knobs."""
        return resolve_executor(self._config.executor, self._config.workers)

    def term_probability(self, term: str, doc_id: str) -> float:
        """Mixture probability ``sum_f w_f * p(term | d_f)``."""
        probability = 0.0
        for field, weight in self._weights.items():
            if weight == 0.0:
                continue
            tf = self._index.term_frequency(field, term, doc_id)
            doc_len = self._index.document_length(field, doc_id)
            collection_p = self._index.collection_probability(field, term)
            probability += weight * smoothed_probability(
                tf, doc_len, collection_p, self._smoothing
            )
        return probability

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        """Score one document: sum of log mixture probabilities over terms.

        Field restrictions (``names:gump``) are honoured by scoring the
        restricted terms only within their field.
        """
        term_scores: dict[str, float] = {}
        score = 0.0
        for term in query.terms:
            log_p = log_probability(self.term_probability(term, doc_id))
            term_scores[term] = log_p
            score += log_p
        for field, terms in query.field_restrictions.items():
            for term in terms:
                tf = self._index.term_frequency(field, term, doc_id)
                doc_len = self._index.document_length(field, doc_id)
                collection_p = self._index.collection_probability(field, term)
                p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
                log_p = log_probability(p)
                term_scores[f"{field}:{term}"] = log_p
                score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> list[ScoredDocument]:
        """Rank candidate documents term-at-a-time and return the top ``k``.

        Walks each query term's postings once, accumulating partial log
        probabilities per candidate, then selects the top-k with a bounded
        heap.  Only the selected documents are re-scored through
        :meth:`score_document` to materialise their per-term breakdown, so
        the output is identical to :meth:`search_exhaustive`.

        With ``SearchConfig.pruning == "maxscore"`` the traversal is
        threshold-pruned: terms are processed in max-score order and
        candidates whose contribution upper bound cannot beat the live θ
        are evicted early (see :mod:`repro.topk`); the ranking stays
        byte-identical because survivors are re-scored exhaustively.
        """
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        weighted_fields = [
            (field, weight) for field, weight in self._weights.items() if weight != 0.0
        ]
        if self._config.pruning in PRUNED_MODES:
            return self._search_maxscore(query, top_k, candidates, support, weighted_fields)
        smoothing = self._smoothing
        per_term = self._per_term_components(query, support, weighted_fields)
        if self._config.columnar:
            # Vectorized plain accumulation: gather-add every term column,
            # select a margin-guarded superset, re-score it exactly —
            # identical output to the scalar accumulate-then-select path.
            view = columnar_view(self._index)
            entries = _dense_kernel_entries(
                view, support, smoothing, self._term_specs(query, weighted_fields)
            )
            candidate_ordinals = view.ordinals_of(candidates)
            partials = accumulate_dense(candidate_ordinals, entries)
            picked = select_survivor_ordinals(candidate_ordinals, partials, top_k)
            exact = _rescore_mixture(view.ids_of(picked), per_term, smoothing)
            exact.sort(key=_rank_key)
            return [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]

        def accumulate(shard: Iterable[str]) -> dict[str, float]:
            accumulators = dict.fromkeys(shard, 0.0)
            for components in per_term:
                _accumulate_mixture_term(accumulators, components, smoothing)
            return accumulators

        num_shards = self._config.shards
        if num_shards > 1:
            # Unpruned fan-out: per-shard accumulation is the identical
            # arithmetic over a candidate partition, so the merged map
            # holds exactly the serial path's values.
            shards = partition_candidates(self._index, candidates, num_shards)
            accumulators = merge_shard_maps(
                self._executor().run(
                    [lambda shard=shard: accumulate(shard) for shard in shards if shard]
                )
            )
        else:
            accumulators = accumulate(candidates)
        top = select_top_k(accumulators, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def _term_specs(
        self, query: KeywordQuery, weighted_fields: Sequence[tuple[str, float]]
    ) -> list[tuple[str, str, Sequence[tuple[str, float]]]]:
        """The scored terms in scoring order as ``(key, term, fields)``."""
        specs: list[tuple[str, str, Sequence[tuple[str, float]]]] = [
            (term, term, weighted_fields) for term in query.terms
        ]
        for field, terms in query.field_restrictions.items():
            restricted = ((field, 1.0),)
            specs.extend((f"{field}:{term}", term, restricted) for term in terms)
        return specs

    def _per_term_components(
        self,
        query: KeywordQuery,
        support: ScoringSupport,
        weighted_fields: Sequence[tuple[str, float]],
    ) -> list[list[tuple[float, Mapping[str, int], Mapping[str, int], float]]]:
        """Each scored term's lookup components, resolved once per query.

        Shared by the accumulate passes (every shard worker included), the
        pruning entries and the exact re-scoring epilogue, so the
        per-(field, term) statistics are resolved exactly once however
        many shards fan out.
        """
        smoothing = self._smoothing
        return [
            _term_components(term, fields, support, smoothing)
            for _, term, fields in self._term_specs(query, weighted_fields)
        ]

    def _dense_entries(
        self,
        query: KeywordQuery,
        support: ScoringSupport,
        weighted_fields: Sequence[tuple[str, float]],
        per_term: Sequence[list[tuple[float, Mapping[str, int], Mapping[str, int], float]]],
    ) -> list[DenseTermEntry]:
        """One pruning entry per query term, with mixture bounds attached."""
        bounds = LanguageModelBounds(support, self._smoothing)
        smoothing = self._smoothing
        entries: list[DenseTermEntry] = []
        for (key, term, fields), components in zip(
            self._term_specs(query, weighted_fields), per_term
        ):
            floor, upper = bounds.mixture_bounds(term, fields)
            entries.append(
                DenseTermEntry(
                    key=key,
                    floor=floor,
                    upper=upper,
                    accumulate=lambda accumulators, cut, components=components: (
                        _accumulate_mixture_term_pruned(
                            accumulators, cut, components, smoothing
                        )
                    ),
                )
            )
        return entries

    def _search_maxscore(
        self,
        query: KeywordQuery,
        top_k: int,
        candidates: Iterable[str],
        support: ScoringSupport,
        weighted_fields: Sequence[tuple[str, float]],
    ) -> list[ScoredDocument]:
        """Threshold-pruned traversal + exact re-scoring of the survivors.

        The survivors are re-scored with the same floating-point operations
        in the same (query) order as :meth:`score_document`, so the final
        ranking is byte-identical to the exhaustive path; only the top-k
        winners pay the full per-term breakdown construction.

        With ``pruning="blockmax"`` the initial θ is primed from a small
        subset pool of the highest-tf documents per term (see
        :func:`_prime_threshold`), so the first eviction passes prune
        with an exact-score threshold instead of the loose
        partial-plus-floor bound.
        """
        smoothing = self._smoothing
        per_term = self._per_term_components(query, support, weighted_fields)
        num_shards = self._config.shards
        prime = NO_THRESHOLD
        # Sharded traversals always prime: a shard's first passes only see
        # its own slice of the pool, so the exactly-scored subset pool is
        # what hands every worker a near-final θ from pass two on (the
        # serial path reserves priming for blockmax — its partial-plus-
        # floor θ over the full pool is already decent).
        if (
            self._config.pruning == "blockmax" or num_shards > 1
        ) and 4 * top_k < len(candidates):
            prime = _prime_threshold(per_term, smoothing, top_k)
        if self._config.columnar:
            view = columnar_view(self._index)
            kernel_entries = _dense_kernel_entries(
                view, support, smoothing, self._term_specs(query, weighted_fields)
            )
            candidate_ordinals = view.ordinals_of(candidates)
            if num_shards > 1:
                executor = self._executor()
                plan = None
                if getattr(executor, "is_process", False):
                    plan = _dense_process_plan(
                        self._index, support, smoothing, self._term_specs(query, weighted_fields)
                    )
                picked = _sharded_columnar_dense_survivors(
                    view,
                    candidate_ordinals,
                    kernel_entries,
                    top_k,
                    self._pruning_stats,
                    prime,
                    num_shards,
                    executor=executor,
                    process_plan=plan,
                )
            else:
                ordinals, partials = columnar_dense(
                    candidate_ordinals,
                    kernel_entries,
                    top_k,
                    self._pruning_stats,
                    prime_threshold=prime,
                )
                picked = select_survivor_ordinals(ordinals, partials, top_k)
            to_rescore = view.ids_of(picked)
        elif num_shards > 1:
            entries = self._dense_entries(query, support, weighted_fields, per_term)
            shards = partition_candidates(self._index, candidates, num_shards)
            to_rescore = _sharded_dense_survivors(
                shards, entries, top_k, self._pruning_stats, prime, executor=self._executor()
            )
        else:
            entries = self._dense_entries(query, support, weighted_fields, per_term)
            survivors = maxscore_dense(
                candidates, entries, top_k, self._pruning_stats, prime_threshold=prime
            )
            to_rescore = select_survivors(survivors, top_k)
        self._pruning_stats.rescored += len(to_rescore)
        exact = _rescore_mixture(to_rescore, per_term, smoothing)
        exact.sort(key=_rank_key)
        return [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]

    def search_exhaustive(self, query: KeywordQuery, top_k: int | None = None) -> list[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path).

        Kept as the reference implementation for equivalence tests and the
        accumulator-vs-exhaustive A/B benchmark mode.
        """
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]


class SingleFieldScorer:
    """Baseline: query-likelihood over one catch-all field.

    Used by the E7 experiment to show the benefit of the five-field mixture
    over indexing all entity text into a single field.
    """

    def __init__(self, index: FieldedIndex, field: str, config: SearchConfig | None = None) -> None:
        self._index = index
        self._field = field
        self._config = config or SearchConfig()
        self._smoothing = SmoothingParams(
            method=self._config.smoothing,
            dirichlet_mu=self._config.dirichlet_mu,
            jm_lambda=self._config.jm_lambda,
        )
        self._pruning_stats = PruningStats()

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the config knobs."""
        return resolve_executor(self._config.executor, self._config.workers)

    def score_document(self, query: KeywordQuery, doc_id: str) -> ScoredDocument:
        score = 0.0
        term_scores: dict[str, float] = {}
        for term in query.all_terms():
            tf = self._index.term_frequency(self._field, term, doc_id)
            doc_len = self._index.document_length(self._field, doc_id)
            collection_p = self._index.collection_probability(self._field, term)
            p = smoothed_probability(tf, doc_len, collection_p, self._smoothing)
            log_p = log_probability(p)
            term_scores[term] = log_p
            score += log_p
        return ScoredDocument(doc_id=doc_id, score=score, term_scores=term_scores)

    def search(self, query: KeywordQuery, top_k: int | None = None) -> list[ScoredDocument]:
        """Term-at-a-time ranking over the single field (see the MLM scorer)."""
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        if not candidates:
            return []
        support = self._index.scoring_support()
        single_field = ((self._field, 1.0),)
        smoothing = self._smoothing
        per_term = [
            _term_components(term, single_field, support, smoothing)
            for term in query.all_terms()
        ]
        term_specs: list[tuple[str, str, Sequence[tuple[str, float]]]] = [
            (term, term, single_field) for term in query.all_terms()
        ]
        if self._config.pruning in PRUNED_MODES:
            num_shards = self._config.shards
            prime = NO_THRESHOLD
            if (
                self._config.pruning == "blockmax" or num_shards > 1
            ) and 4 * top_k < len(candidates):
                prime = _prime_threshold(per_term, smoothing, top_k)
            if self._config.columnar:
                view = columnar_view(self._index)
                kernel_entries = _dense_kernel_entries(view, support, smoothing, term_specs)
                candidate_ordinals = view.ordinals_of(candidates)
                if num_shards > 1:
                    executor = self._executor()
                    plan = None
                    if getattr(executor, "is_process", False):
                        plan = _dense_process_plan(
                            self._index, support, smoothing, term_specs
                        )
                    picked = _sharded_columnar_dense_survivors(
                        view,
                        candidate_ordinals,
                        kernel_entries,
                        top_k,
                        self._pruning_stats,
                        prime,
                        num_shards,
                        executor=executor,
                        process_plan=plan,
                    )
                else:
                    ordinals, partials = columnar_dense(
                        candidate_ordinals,
                        kernel_entries,
                        top_k,
                        self._pruning_stats,
                        prime_threshold=prime,
                    )
                    picked = select_survivor_ordinals(ordinals, partials, top_k)
                to_rescore = view.ids_of(picked)
            else:
                bounds = LanguageModelBounds(support, smoothing)
                entries: list[DenseTermEntry] = []
                for term, components in zip(query.all_terms(), per_term):
                    floor, upper = bounds.mixture_bounds(term, single_field)
                    entries.append(
                        DenseTermEntry(
                            key=term,
                            floor=floor,
                            upper=upper,
                            accumulate=lambda accumulators, cut, components=components: (
                                _accumulate_mixture_term_pruned(
                                    accumulators, cut, components, smoothing
                                )
                            ),
                        )
                    )
                if num_shards > 1:
                    shards = partition_candidates(self._index, candidates, num_shards)
                    to_rescore = _sharded_dense_survivors(
                        shards, entries, top_k, self._pruning_stats, prime,
                        executor=self._executor(),
                    )
                else:
                    survivors = maxscore_dense(
                        candidates, entries, top_k, self._pruning_stats, prime_threshold=prime
                    )
                    to_rescore = select_survivors(survivors, top_k)
            self._pruning_stats.rescored += len(to_rescore)
            exact = _rescore_mixture(to_rescore, per_term, smoothing)
            exact.sort(key=_rank_key)
            return [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]

        if self._config.columnar:
            view = columnar_view(self._index)
            kernel_entries = _dense_kernel_entries(view, support, smoothing, term_specs)
            candidate_ordinals = view.ordinals_of(candidates)
            partials = accumulate_dense(candidate_ordinals, kernel_entries)
            picked = select_survivor_ordinals(candidate_ordinals, partials, top_k)
            exact = _rescore_mixture(view.ids_of(picked), per_term, smoothing)
            exact.sort(key=_rank_key)
            return [self.score_document(query, doc_id) for doc_id, _ in exact[:top_k]]

        def accumulate(shard: Iterable[str]) -> dict[str, float]:
            accumulators = dict.fromkeys(shard, 0.0)
            for components in per_term:
                _accumulate_mixture_term(accumulators, components, smoothing)
            return accumulators

        num_shards = self._config.shards
        if num_shards > 1:
            shards = partition_candidates(self._index, candidates, num_shards)
            accumulators = merge_shard_maps(
                self._executor().run(
                    [lambda shard=shard: accumulate(shard) for shard in shards if shard]
                )
            )
        else:
            accumulators = accumulate(candidates)
        top = select_top_k(accumulators, top_k)
        return [self.score_document(query, doc_id) for doc_id, _ in top]

    def search_exhaustive(self, query: KeywordQuery, top_k: int | None = None) -> list[ScoredDocument]:
        """Score every candidate and fully sort (the pre-accumulator path)."""
        top_k = top_k or self._config.top_k
        candidates = self._index.candidate_documents(query.all_terms())
        scored = [self.score_document(query, doc_id) for doc_id in candidates]
        scored.sort(key=lambda result: (-result.score, result.doc_id))
        return scored[:top_k]
