"""Keyword query parsing for the entity search engine.

The demo's query area (Fig 3-a) accepts free keyword text.  The parser
normalizes it, optionally honours a small amount of structure
(``field:term`` restrictions and quoted phrases) and produces the term
multiset the retrieval models consume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..config import DEFAULT_FIELDS
from ..exceptions import EmptyQueryError
from ..text import Analyzer, NAME_ANALYZER

_PHRASE = re.compile(r'"([^"]*)"')
_FIELDED = re.compile(r"(\w+):(\S+)")


@dataclass(frozen=True)
class KeywordQuery:
    """A parsed keyword query.

    Attributes
    ----------
    raw:
        The original query string.
    terms:
        The analyzed free-text terms (includes phrase terms).
    phrases:
        Quoted phrases, each as a tuple of analyzed terms.
    field_restrictions:
        ``field -> terms`` restrictions given as ``field:term`` tokens; only
        fields of the five-field schema are accepted, others are treated as
        ordinary text.
    """

    raw: str
    terms: tuple[str, ...]
    phrases: tuple[tuple[str, ...], ...] = ()
    field_restrictions: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.terms and not self.field_restrictions

    def all_terms(self) -> list[str]:
        """Free-text terms plus all field-restricted terms."""
        result = list(self.terms)
        for terms in self.field_restrictions.values():
            result.extend(terms)
        return result


def parse_query(raw: str, analyzer: Analyzer = NAME_ANALYZER) -> KeywordQuery:
    """Parse a keyword query string.

    Raises
    ------
    EmptyQueryError
        When the query contains no indexable terms at all.
    """
    text = raw or ""
    phrases: list[tuple[str, ...]] = []

    def collect_phrase(match: re.Match[str]) -> str:
        phrase_terms = tuple(analyzer.analyze_query(match.group(1)))
        if phrase_terms:
            phrases.append(phrase_terms)
        return " " + " ".join(phrase_terms) + " "

    text = _PHRASE.sub(collect_phrase, text)

    field_restrictions: dict[str, list[str]] = {}

    def collect_fielded(match: re.Match[str]) -> str:
        field_name, value = match.group(1).lower(), match.group(2)
        if field_name in DEFAULT_FIELDS:
            field_restrictions.setdefault(field_name, []).extend(
                analyzer.analyze_query(value)
            )
            return " "
        return match.group(0)

    text = _FIELDED.sub(collect_fielded, text)

    terms = tuple(analyzer.analyze_query(text))
    query = KeywordQuery(
        raw=raw,
        terms=terms,
        phrases=tuple(phrases),
        field_restrictions={k: tuple(v) for k, v in field_restrictions.items() if v},
    )
    if query.is_empty:
        raise EmptyQueryError(f"query contains no indexable terms: {raw!r}")
    return query
