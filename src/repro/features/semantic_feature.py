"""Semantic features (SFs) — the paper's central concept.

A semantic feature is composed of a predicate and an anchor entity, with a
direction (§2.3): ``<e, p, x>`` (the anchor is the *subject*) or
``<x, p, e>`` (the anchor is the *object*), where ``x`` ranges over entities.
The paper's running example ``Tom_Hanks:starring`` denotes the triple
pattern of entities that have Tom Hanks as a star, i.e. the films ``x`` with
``<x, starring, Tom_Hanks>``.

An entity ``e`` *matches* a semantic feature ``pi`` (written ``e |= pi``)
when the corresponding triple exists; ``E(pi)`` is the set of matching
entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Direction(str, Enum):
    """Which position of the triple pattern the free variable ``x`` occupies.

    ``SUBJECT_OF``:  pattern ``<anchor, predicate, x>`` — matching entities
    are *objects* of edges leaving the anchor.

    ``OBJECT_OF``:  pattern ``<x, predicate, anchor>`` — matching entities
    are *subjects* of edges pointing at the anchor (the
    ``Tom_Hanks:starring`` case: films starring Tom Hanks).
    """

    SUBJECT_OF = "subject_of"
    OBJECT_OF = "object_of"

    def flipped(self) -> "Direction":
        """The opposite direction."""
        if self is Direction.SUBJECT_OF:
            return Direction.OBJECT_OF
        return Direction.SUBJECT_OF


@dataclass(frozen=True, order=True)
class SemanticFeature:
    """A semantic feature ``pi = (anchor, predicate, direction)``.

    Examples
    --------
    ``SemanticFeature("dbr:Tom_Hanks", "dbo:starring", Direction.OBJECT_OF)``
    is the paper's ``Tom_Hanks:starring``: the set of films ``x`` such that
    ``<x, dbo:starring, dbr:Tom_Hanks>`` holds.
    """

    anchor: str
    predicate: str
    direction: Direction = Direction.OBJECT_OF

    def __post_init__(self) -> None:
        if not self.anchor:
            raise ValueError("semantic feature anchor must be non-empty")
        if not self.predicate:
            raise ValueError("semantic feature predicate must be non-empty")

    @property
    def key(self) -> tuple[str, str, str]:
        """Hashable key ``(anchor, predicate, direction)``."""
        return (self.anchor, self.predicate, self.direction.value)

    def notation(self) -> str:
        """The paper's compact notation.

        ``anchor:predicate`` for OBJECT_OF features (entities pointing at
        the anchor) and ``anchor:predicate^`` for SUBJECT_OF features
        (entities the anchor points at).
        """
        suffix = "" if self.direction is Direction.OBJECT_OF else "^"
        return f"{self.anchor}:{self.predicate}{suffix}"

    def triple_pattern(self) -> str:
        """The SPARQL-like triple pattern this feature denotes."""
        if self.direction is Direction.OBJECT_OF:
            return f"<?x, {self.predicate}, {self.anchor}>"
        return f"<{self.anchor}, {self.predicate}, ?x>"

    def describe(self, anchor_label: str | None = None, predicate_label: str | None = None) -> str:
        """Human-readable description for the SF recommendation area."""
        anchor = anchor_label or self.anchor
        predicate = predicate_label or self.predicate
        if self.direction is Direction.OBJECT_OF:
            return f"entities whose '{predicate}' is {anchor}"
        return f"entities that {anchor} '{predicate}'"

    @staticmethod
    def parse(notation: str) -> "SemanticFeature":
        """Parse the compact ``anchor:predicate[^]`` notation.

        The anchor may itself contain a namespace colon
        (``dbr:Tom_Hanks:dbo:starring``); the split point is taken so that
        both anchor and predicate keep their namespace prefix, i.e. the
        split is made at the second-to-last colon.
        """
        text = notation.strip()
        if not text:
            raise ValueError("empty semantic feature notation")
        direction = Direction.OBJECT_OF
        if text.endswith("^"):
            direction = Direction.SUBJECT_OF
            text = text[:-1]
        parts = text.split(":")
        if len(parts) < 2:
            raise ValueError(f"cannot parse semantic feature notation: {notation!r}")
        if len(parts) == 2:
            anchor, predicate = parts
        elif len(parts) == 3:
            # Either "dbr:Tom_Hanks:starring" or "Tom_Hanks:dbo:starring";
            # prefer keeping the namespace with the anchor.
            anchor, predicate = ":".join(parts[:2]), parts[2]
        else:
            anchor, predicate = ":".join(parts[:2]), ":".join(parts[2:])
        if not anchor or not predicate:
            raise ValueError(f"cannot parse semantic feature notation: {notation!r}")
        return SemanticFeature(anchor=anchor, predicate=predicate, direction=direction)
