"""Semantic features: the (anchor entity, predicate, direction) patterns."""

from .extraction import (
    anchor_type_directions,
    candidate_entities,
    entity_matches,
    feature_target_types,
    features_of_entities,
    features_of_entity,
    matching_entities,
)
from .feature_index import FeatureIndexSnapshot, SemanticFeatureIndex
from .semantic_feature import Direction, SemanticFeature
from .sharded import ShardedSemanticFeatureIndex

__all__ = [
    "Direction",
    "FeatureIndexSnapshot",
    "SemanticFeature",
    "SemanticFeatureIndex",
    "ShardedSemanticFeatureIndex",
    "anchor_type_directions",
    "candidate_entities",
    "entity_matches",
    "feature_target_types",
    "features_of_entities",
    "features_of_entity",
    "matching_entities",
]
