"""Semantic features: the (anchor entity, predicate, direction) patterns."""

from .extraction import (
    anchor_type_directions,
    candidate_entities,
    entity_matches,
    feature_target_types,
    features_of_entities,
    features_of_entity,
    matching_entities,
)
from .feature_index import SemanticFeatureIndex
from .semantic_feature import Direction, SemanticFeature

__all__ = [
    "Direction",
    "SemanticFeature",
    "SemanticFeatureIndex",
    "anchor_type_directions",
    "candidate_entities",
    "entity_matches",
    "feature_target_types",
    "features_of_entities",
    "features_of_entity",
    "matching_entities",
]
