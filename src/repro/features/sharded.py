"""The sharded facade over the semantic-feature index.

:class:`ShardedSemanticFeatureIndex` partitions the *entity id space*
into N shards behind the exact read interface of
:class:`SemanticFeatureIndex` — the recommendation-side sibling of
:class:`~repro.index.sharded.ShardedFieldedIndex`.  Holder lists, feature
maps and smoothing counts stay global (the type-grouped decomposition's
arithmetic must match the serial path bit for bit); the facade adds the
routing layer the entity accumulator fans out over, with a lazily-filled
id→shard memo so partitioning a candidate list costs a dictionary lookup
per entity after the first query (entity ids never change shard, so the
memo survives every epoch).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..exec.sharding import shard_of
from ..kg import KnowledgeGraph
from .feature_index import SemanticFeatureIndex


class ShardedSemanticFeatureIndex(SemanticFeatureIndex):
    """A :class:`SemanticFeatureIndex` whose entities route into N shards."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        num_shards: int = 1,
        max_delta_fraction: float | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        super().__init__(graph, max_delta_fraction=max_delta_fraction)
        self._num_shards = num_shards
        self._shard_by_entity: dict[str, int] = {}

    @classmethod
    def build_sharded(
        cls, graph: KnowledgeGraph, num_shards: int
    ) -> "ShardedSemanticFeatureIndex":
        """Materialise the sharded index for every entity in the graph."""
        index = cls(graph, num_shards=num_shards)
        index.rebuild()
        return index

    @property
    def num_shards(self) -> int:
        """How many entity shards this index routes into."""
        return self._num_shards

    def shard_of_entity(self, entity_id: str) -> int:
        """The shard an entity routes to (stable; memoised per id)."""
        shard = self._shard_by_entity.get(entity_id)
        if shard is None:
            shard = shard_of(entity_id, self._num_shards)
            self._shard_by_entity[entity_id] = shard
        return shard

    def partition_entities(self, entity_ids: Iterable[str]) -> list[list[str]]:
        """Split candidate entities into per-shard buckets (all N returned).

        Order within each bucket preserves the input order — the ranking
        layer's candidate list is relevance-ordered and the per-shard
        traversals must see their members in the same relative order the
        serial traversal would.
        """
        buckets: list[list[str]] = [[] for _ in range(self._num_shards)]
        route = self.shard_of_entity
        for entity_id in entity_ids:
            buckets[route(entity_id)].append(entity_id)
        return buckets
