"""Extraction of semantic features from the knowledge graph.

Two directions of extraction are needed:

* the semantic features *held by* an entity (used to learn about the
  properties of e.g. ``Forrest_Gump`` in many aspects, Fig 1-a), and
* the entity set ``E(pi)`` matching a given feature (used by the ranking
  model's discriminability and by candidate generation).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from ..kg import KnowledgeGraph
from .semantic_feature import Direction, SemanticFeature


def features_of_entity(graph: KnowledgeGraph, entity_id: str) -> list[SemanticFeature]:
    """All semantic features held by ``entity_id``.

    An outgoing edge ``<e, p, a>`` means ``e`` holds the feature
    ``(a, p, OBJECT_OF)`` (e is among the entities pointing at ``a``); an
    incoming edge ``<a, p, e>`` means ``e`` holds ``(a, p, SUBJECT_OF)``.
    """
    graph.require_entity(entity_id)
    features: list[SemanticFeature] = []
    for predicate, target in graph.outgoing(entity_id):
        features.append(SemanticFeature(anchor=target, predicate=predicate, direction=Direction.OBJECT_OF))
    for predicate, source in graph.incoming(entity_id):
        features.append(SemanticFeature(anchor=source, predicate=predicate, direction=Direction.SUBJECT_OF))
    return features


def matching_entities(graph: KnowledgeGraph, feature: SemanticFeature) -> set[str]:
    """``E(pi)``: the set of entities matching a semantic feature."""
    if feature.direction is Direction.OBJECT_OF:
        return graph.subjects(feature.predicate, feature.anchor)
    return graph.objects(feature.anchor, feature.predicate)


def entity_matches(graph: KnowledgeGraph, entity_id: str, feature: SemanticFeature) -> bool:
    """``e |= pi``: does the entity hold the feature?"""
    if feature.direction is Direction.OBJECT_OF:
        return feature.anchor in graph.objects(entity_id, feature.predicate)
    return feature.anchor in graph.subjects(feature.predicate, entity_id)


def features_of_entities(
    graph: KnowledgeGraph, entity_ids: Iterable[str]
) -> dict[SemanticFeature, set[str]]:
    """Features held by any of the given entities, with the holders.

    Returns ``feature -> subset of entity_ids holding it``.  This is the
    candidate feature pool ``Phi(Q)`` the ranking model scores.
    """
    holders: dict[SemanticFeature, set[str]] = defaultdict(set)
    for entity_id in entity_ids:
        for feature in features_of_entity(graph, entity_id):
            holders[feature].add(entity_id)
    return dict(holders)


def candidate_entities(
    graph: KnowledgeGraph,
    features: Iterable[SemanticFeature],
    exclude: Iterable[str] = (),
    limit: int | None = None,
) -> list[str]:
    """Entities matching any of the features, ordered by how many they match.

    The ordering (most shared features first, then identifier for
    determinism) makes truncation by ``limit`` keep the most promising
    candidates, mirroring the candidate-generation step of the entity-set
    expansion model.
    """
    excluded = set(exclude)
    counts: Counter[str] = Counter()
    for feature in features:
        for entity_id in matching_entities(graph, feature):
            if entity_id not in excluded:
                counts[entity_id] += 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    if limit is not None:
        ranked = ranked[:limit]
    return [entity_id for entity_id, _ in ranked]


def feature_target_types(graph: KnowledgeGraph, feature: SemanticFeature) -> Counter:
    """Distribution of (dominant) types among ``E(pi)``.

    This is what powers the pivot operation: the types of the entities
    matching ``Tom_Hanks:starring`` tell the UI that following this feature
    leads into the Film domain.
    """
    distribution: Counter[str] = Counter()
    for entity_id in matching_entities(graph, feature):
        dominant = graph.dominant_type(entity_id)
        distribution[dominant or "(untyped)"] += 1
    return distribution


def anchor_type_directions(graph: KnowledgeGraph, entity_id: str) -> dict[str, int]:
    """Possible search directions from an entity, as type -> count (Fig 1-b).

    Groups the anchors of the entity's semantic features by their dominant
    type, e.g. Forrest_Gump -> {Actor: 5, Director: 1, ...}.
    """
    directions: dict[str, int] = defaultdict(int)
    for feature in features_of_entity(graph, entity_id):
        anchor_type = graph.dominant_type(feature.anchor) or "(untyped)"
        directions[anchor_type] += 1
    return dict(directions)
