"""A precomputed index of semantic features over the whole graph.

For large graphs, recomputing ``E(pi)`` and the features of every entity on
each query is wasteful.  :class:`SemanticFeatureIndex` materialises both maps
once; it is also the place where global feature statistics (frequencies,
type-conditional counts) used by the ranking model's smoothing live.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..kg import KnowledgeGraph
from .extraction import features_of_entity
from .semantic_feature import Direction, SemanticFeature


class SemanticFeatureIndex:
    """Bidirectional map between entities and their semantic features."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._entity_features: Dict[str, FrozenSet[SemanticFeature]] = {}
        self._feature_entities: Dict[SemanticFeature, Set[str]] = defaultdict(set)
        self._built = False

    @classmethod
    def build(cls, graph: KnowledgeGraph) -> "SemanticFeatureIndex":
        """Materialise the index for every entity in the graph."""
        index = cls(graph)
        index.rebuild()
        return index

    def rebuild(self) -> None:
        """(Re)compute the index from the graph's current contents."""
        self._entity_features.clear()
        self._feature_entities = defaultdict(set)
        for entity_id in self._graph.entities():
            features = frozenset(features_of_entity(self._graph, entity_id))
            self._entity_features[entity_id] = features
            for feature in features:
                self._feature_entities[feature].add(entity_id)
        self._built = True

    def _ensure_built(self) -> None:
        if not self._built:
            self.rebuild()

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def features_of(self, entity_id: str) -> FrozenSet[SemanticFeature]:
        """Features held by an entity (empty set for unknown entities)."""
        self._ensure_built()
        return self._entity_features.get(entity_id, frozenset())

    def entities_matching(self, feature: SemanticFeature) -> Set[str]:
        """``E(pi)`` from the materialised index."""
        self._ensure_built()
        return set(self._feature_entities.get(feature, set()))

    def matching_count(self, feature: SemanticFeature) -> int:
        """``||E(pi)||`` without copying the entity set."""
        self._ensure_built()
        return len(self._feature_entities.get(feature, set()))

    def holds(self, entity_id: str, feature: SemanticFeature) -> bool:
        """``e |= pi`` from the materialised index."""
        self._ensure_built()
        return feature in self._entity_features.get(entity_id, frozenset())

    def all_features(self) -> List[SemanticFeature]:
        """Every distinct semantic feature in the graph."""
        self._ensure_built()
        return sorted(self._feature_entities.keys())

    def num_features(self) -> int:
        self._ensure_built()
        return len(self._feature_entities)

    # ------------------------------------------------------------------ #
    # Aggregations used by ranking
    # ------------------------------------------------------------------ #
    def features_of_any(self, entity_ids: Iterable[str]) -> Dict[SemanticFeature, Set[str]]:
        """Features held by any of the entities, with their holders."""
        self._ensure_built()
        holders: Dict[SemanticFeature, Set[str]] = defaultdict(set)
        for entity_id in entity_ids:
            for feature in self._entity_features.get(entity_id, frozenset()):
                holders[feature].add(entity_id)
        return dict(holders)

    def type_conditional_count(self, feature: SemanticFeature, type_id: str) -> Tuple[int, int]:
        """``(||E(pi) ∩ E(c)||, ||E(c)||)`` for the type-based smoothing.

        ``E(c)`` is the set of instances of ``type_id``.
        """
        self._ensure_built()
        type_members = self._graph.entities_of_type(type_id)
        if not type_members:
            return 0, 0
        matching = self._feature_entities.get(feature, set())
        return len(matching & type_members), len(type_members)

    def shared_features(self, left: str, right: str) -> FrozenSet[SemanticFeature]:
        """Features held by both entities — the explanation evidence."""
        self._ensure_built()
        return self.features_of(left) & self.features_of(right)

    def feature_frequency_histogram(self) -> Dict[int, int]:
        """Histogram of ``||E(pi)||`` values, for dataset reporting."""
        self._ensure_built()
        histogram: Dict[int, int] = defaultdict(int)
        for entities in self._feature_entities.values():
            histogram[len(entities)] += 1
        return dict(histogram)
