"""A precomputed index of semantic features over the whole graph.

For large graphs, recomputing ``E(pi)`` and the features of every entity on
each query is wasteful.  :class:`SemanticFeatureIndex` materialises both maps
once; it is also the place where global feature statistics (frequencies,
type-conditional counts) used by the ranking model's smoothing live.

The index is *epoch-aware*, mirroring ``FieldedIndex`` on the search side:
it remembers the graph mutation epoch it was built at and transparently
refreshes when the graph has changed, so every accessor always reflects the
current graph.  :attr:`epoch` is the cache key the recommendation layer uses
to invalidate memoised scores and cached recommendations.

Since PR 5 the materialised maps live in an immutable
:class:`FeatureIndexSnapshot` that is *replaced atomically* on refresh
instead of being patched in place: a refresh derives the successor (from
the old snapshot plus the triple delta, under the graph's mutation lock so
it folds a consistent graph state) and swaps one reference.  Readers — and
the ranking layer's :class:`~repro.ranking.ranking_support.RankingSupport`,
which pins a snapshot for a whole query — therefore never observe a
half-applied refresh while mutations proceed: this is the feature-side
half of the engines' snapshot-isolated serving contract.

Refreshing is *incremental*: the graph's triple log is append-only, so the
snapshot remembers how many triples it reflects and the successor applies
only the delta — recomputing the features of the entities the new triples
touch — falling back to a full rebuild when the delta outgrows
:attr:`SemanticFeatureIndex.max_delta_fraction` of the graph (a large
delta touches most entities anyway, and the full pass has better
constants).  A delta-applied snapshot is *equal* to a freshly built one by
construction, enforced by ``tests/test_features_incremental.py``.
"""

from __future__ import annotations

import threading
from collections import Counter, defaultdict
from collections.abc import Iterable

from ..index.fielded_index import next_index_uid
from ..kg import DISAMBIGUATES, KnowledgeGraph, REDIRECT, STRUCTURAL_PREDICATES, Triple
from .extraction import features_of_entity
from .semantic_feature import SemanticFeature

#: Shared empty holder set returned for unknown features, so that misses on
#: the hot candidate-generation path never allocate a throwaway set.
_EMPTY_HOLDERS: frozenset[str] = frozenset()


class FeatureIndexSnapshot:
    """The materialised maps of one graph epoch, immutable once published.

    Holder sets are shared structurally between successive snapshots
    (copy-on-write: a delta refresh only replaces the sets of affected
    features), so pinning a snapshot is O(1) and holding one costs no
    copies.  The graph's type tables are pinned alongside
    (:meth:`KnowledgeGraph.type_tables` — outer copies of immutable
    inner sets), so dominant types and the per-(feature, type) smoothing
    counts a pinned reader derives are *fully* this epoch's values, never
    a blend with a concurrent mutation's.
    """

    __slots__ = (
        "entity_features",
        "feature_entities",
        "entity_types",
        "type_members",
        "epoch",
        "triples",
        "_type_counts",
        "_columnar",
    )

    def __init__(
        self,
        graph: KnowledgeGraph,
        entity_features: dict[str, frozenset[SemanticFeature]],
        feature_entities: dict[SemanticFeature, frozenset[str]],
        epoch: int,
        triples: int,
    ) -> None:
        self.entity_features = entity_features
        self.feature_entities = feature_entities
        #: Pinned ``entity → types`` / ``type → members`` tables of this
        #: epoch (the constructor runs under the graph's lock).
        self.entity_types, self.type_members = graph.type_tables()
        self.epoch = epoch
        self.triples = triples
        #: Memoised ``(||E(pi) ∩ E(c)||, ||E(c)||)`` pairs for this epoch.
        self._type_counts: dict[tuple[SemanticFeature, str], tuple[int, int]] = {}
        #: Lazily built per-epoch array tables
        #: (:func:`repro.features.columnar.columnar_tables`).
        self._columnar = None

    def features_of(self, entity_id: str) -> frozenset[SemanticFeature]:
        """Features held by an entity (empty set for unknown entities)."""
        return self.entity_features.get(entity_id, _EMPTY_HOLDERS)  # type: ignore[return-value]

    def holders_of(self, feature: SemanticFeature) -> frozenset[str]:
        """``E(pi)`` without copying — the snapshot's holder set, read-only."""
        return self.feature_entities.get(feature, _EMPTY_HOLDERS)

    def holds(self, entity_id: str, feature: SemanticFeature) -> bool:
        """``e |= pi`` from the materialised snapshot."""
        return feature in self.entity_features.get(entity_id, _EMPTY_HOLDERS)

    def dominant_type(self, entity_id: str) -> str:
        """``c*(e)`` from the pinned type tables (empty string if untyped).

        Same selection rule as :meth:`KnowledgeGraph.dominant_type` —
        the least-populated (most specific) type, ties by name — but
        evaluated against this snapshot's epoch, so a query pinned here
        never sees a concurrent mutation's type assignments.
        """
        entity_types = self.entity_types.get(entity_id)
        if not entity_types:
            return ""
        members = self.type_members
        return min(entity_types, key=lambda t: (len(members.get(t, ())), t))

    def type_conditional_count(self, feature: SemanticFeature, type_id: str) -> tuple[int, int]:
        """``(||E(pi) ∩ E(c)||, ||E(c)||)`` for the type-based smoothing.

        Memoised per snapshot and computed entirely from pinned state
        (this epoch's holder sets against this epoch's type members), so
        a pinned reader's smoothing never blends two epochs.
        """
        key = (feature, type_id)
        cached = self._type_counts.get(key)
        if cached is not None:
            return cached
        type_members = self.type_members.get(type_id)
        if not type_members:
            counts = (0, 0)
        else:
            matching = self.feature_entities.get(feature, _EMPTY_HOLDERS)
            counts = (len(matching & type_members), len(type_members))
        self._type_counts[key] = counts
        return counts


class SemanticFeatureIndex:
    """Bidirectional map between entities and their semantic features."""

    #: Largest triple delta, as a fraction of the graph's total triples,
    #: the incremental refresh will apply before falling back to a full
    #: rebuild (mutate-heavy sessions with small deltas stay cheap, bulk
    #: loads take the better-constant full pass).
    max_delta_fraction: float = 0.2

    def __init__(self, graph: KnowledgeGraph, max_delta_fraction: float | None = None) -> None:
        self._graph = graph
        if max_delta_fraction is not None:
            if not 0.0 <= max_delta_fraction <= 1.0:
                raise ValueError("max_delta_fraction must lie in [0, 1]")
            self.max_delta_fraction = max_delta_fraction
        #: Process-unique instance id: ``(uid, epoch)`` keys this index's
        #: published shared-memory feature tables, collision-free against
        #: the search indexes sharing the snapshot registry.
        self._uid = next_index_uid()
        self._snapshot_ref: FeatureIndexSnapshot | None = None
        #: Serialises refreshes: concurrent readers that both notice a
        #: stale snapshot build the successor once, not twice.
        self._refresh_lock = threading.Lock()
        self._full_rebuilds = 0
        self._delta_rebuilds = 0
        self._delta_entities = 0

    @classmethod
    def build(cls, graph: KnowledgeGraph) -> "SemanticFeatureIndex":
        """Materialise the index for every entity in the graph."""
        index = cls(graph)
        index.rebuild()
        return index

    @classmethod
    def restore(
        cls,
        graph: KnowledgeGraph,
        snapshot: FeatureIndexSnapshot,
        **kwargs: object,
    ) -> "SemanticFeatureIndex":
        """Adopt a pre-materialised snapshot instead of rebuilding.

        The durable-storage cold-start path: a snapshot deserialised from
        disk (see :mod:`repro.storage.kgstore`) is installed directly,
        skipping the per-entity feature extraction pass.  The snapshot
        must reflect the graph's current epoch — anything else would
        immediately trigger the refresh this constructor exists to avoid,
        and signals a snapshot/graph mismatch.
        """
        if snapshot.epoch != graph.epoch or snapshot.triples != len(graph):
            raise ValueError(
                f"snapshot reflects epoch {snapshot.epoch} "
                f"({snapshot.triples} triples), graph is at epoch "
                f"{graph.epoch} ({len(graph)} triples)"
            )
        index = cls(graph, **kwargs)  # type: ignore[arg-type]
        index._snapshot_ref = snapshot
        return index

    def _full_snapshot(self) -> FeatureIndexSnapshot:
        """Recompute the whole index from the graph's current contents."""
        entity_features: dict[str, frozenset[SemanticFeature]] = {}
        feature_entities: dict[SemanticFeature, set[str]] = defaultdict(set)
        for entity_id in self._graph.entities():
            features = frozenset(features_of_entity(self._graph, entity_id))
            entity_features[entity_id] = features
            for feature in features:
                feature_entities[feature].add(entity_id)
        self._full_rebuilds += 1
        return FeatureIndexSnapshot(
            self._graph,
            entity_features,
            {feature: frozenset(holders) for feature, holders in feature_entities.items()},
            self._graph.epoch,
            len(self._graph),
        )

    def rebuild(self) -> None:
        """Recompute the whole index from the graph's current contents."""
        with self._refresh_lock, self._graph.lock:
            self._snapshot_ref = self._full_snapshot()

    def _delta_snapshot(
        self, old: FeatureIndexSnapshot, new_triples: Iterable[Triple]
    ) -> FeatureIndexSnapshot:
        """The successor snapshot with the appended triples folded in.

        Only object-property edges change an entity's semantic features
        (see :func:`repro.features.extraction.features_of_entity`);
        structural triples merely introduce entities that need an (empty)
        feature entry.  The affected entities' features are recomputed
        from the graph, and the holder sets of the features they gained
        or lost are replaced copy-on-write — one new set per touched
        feature, every untouched set shared with the old snapshot, so
        readers pinned to ``old`` keep exactly what they saw.  The triple
        log is append-only, so there is no remove side to the delta.
        """
        affected: set[str] = set()
        old_features = old.entity_features
        for triple in new_triples:
            subject, predicate = triple.subject, triple.predicate
            if triple.is_literal:
                if subject not in old_features:
                    affected.add(subject)
                continue
            if predicate not in STRUCTURAL_PREDICATES:
                # A genuine edge: both endpoints gain a feature.
                affected.add(subject)
                affected.add(triple.object)
                continue
            if subject not in old_features:
                affected.add(subject)
            if predicate in (REDIRECT, DISAMBIGUATES) and (
                triple.object not in old_features
            ):
                affected.add(triple.object)
        entity_features = dict(old_features)
        feature_entities = dict(old.feature_entities)
        gained: dict[SemanticFeature, list[str]] = defaultdict(list)
        lost: dict[SemanticFeature, list[str]] = defaultdict(list)
        for entity_id in affected:
            before = entity_features.get(entity_id, _EMPTY_HOLDERS)
            after = frozenset(features_of_entity(self._graph, entity_id))
            if after != before:
                for feature in before - after:  # type: ignore[operator]
                    lost[feature].append(entity_id)
                for feature in after - before:
                    gained[feature].append(entity_id)
            entity_features[entity_id] = after
        # One copy-on-write replacement per touched feature, however many
        # affected entities share it.
        for feature in lost.keys() | gained.keys():
            holders = set(feature_entities.get(feature, _EMPTY_HOLDERS))
            holders.difference_update(lost.get(feature, ()))
            holders.update(gained.get(feature, ()))
            if holders:
                feature_entities[feature] = frozenset(holders)
            else:
                feature_entities.pop(feature, None)
        self._delta_rebuilds += 1
        self._delta_entities += len(affected)
        return FeatureIndexSnapshot(
            self._graph,
            entity_features,
            feature_entities,
            self._graph.epoch,
            len(self._graph),
        )

    def snapshot(self) -> FeatureIndexSnapshot:
        """The current (refreshed-if-stale) snapshot, safe to pin.

        The returned object never changes after publication; queries that
        must see one consistent epoch end to end (the ranking layer's
        scoring support) hold on to it while mutations advance the index.
        """
        snapshot = self._snapshot_ref
        if snapshot is not None and snapshot.epoch == self._graph.epoch:
            return snapshot
        with self._refresh_lock:
            # Double-check under the refresh lock: a concurrent reader may
            # have refreshed while this one waited.
            with self._graph.lock:
                snapshot = self._snapshot_ref
                if snapshot is not None and snapshot.epoch == self._graph.epoch:
                    return snapshot
                if snapshot is None:
                    fresh = self._full_snapshot()
                else:
                    total = len(self._graph)
                    delta = total - snapshot.triples
                    if 0 <= delta <= self.max_delta_fraction * max(total, 1):
                        fresh = self._delta_snapshot(
                            snapshot, self._graph.triples_since(snapshot.triples)
                        )
                    else:
                        fresh = self._full_snapshot()
                self._snapshot_ref = fresh
                return fresh

    def rebuild_info(self) -> dict[str, int]:
        """Full-vs-delta refresh counters (``cache_info()`` convention)."""
        return {
            "full_rebuilds": self._full_rebuilds,
            "delta_rebuilds": self._delta_rebuilds,
            "delta_entities": self._delta_entities,
        }

    @property
    def epoch(self) -> int:
        """The graph mutation epoch this index reflects.

        Reading the property refreshes the index if the graph changed, so
        the returned value always matches the data subsequent lookups see.
        Derived caches (memoised probabilities, recommendation results) key
        on this value and are invalidated by any graph mutation.
        """
        return self.snapshot().epoch

    @property
    def uid(self) -> int:
        """Process-unique instance id (see :meth:`FieldedIndex.uid`).

        ``(uid, epoch)`` keys this index's published shared-memory
        feature tables in the snapshot registry.
        """
        return self._uid

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def features_of(self, entity_id: str) -> frozenset[SemanticFeature]:
        """Features held by an entity (empty set for unknown entities)."""
        return self.snapshot().features_of(entity_id)

    def holders_of(self, feature: SemanticFeature) -> frozenset[str]:
        """``E(pi)`` without copying — the internal holder set, read-only.

        This is the no-copy accessor the ranking layer's accumulator
        traversal walks term-at-a-time.  Since PR 5 the returned set is a
        ``frozenset`` shared with the current snapshot (mutations publish
        a successor snapshot instead of patching it).  Unknown features
        return a shared empty set (no allocation).
        """
        return self.snapshot().holders_of(feature)

    def entities_matching(self, feature: SemanticFeature) -> set[str]:
        """``E(pi)`` as an independent copy (safe for callers to mutate)."""
        return set(self.holders_of(feature))

    def matching_count(self, feature: SemanticFeature) -> int:
        """``||E(pi)||`` without copying the entity set."""
        return len(self.holders_of(feature))

    def holds(self, entity_id: str, feature: SemanticFeature) -> bool:
        """``e |= pi`` from the materialised index."""
        return self.snapshot().holds(entity_id, feature)

    def all_features(self) -> list[SemanticFeature]:
        """Every distinct semantic feature in the graph."""
        return sorted(self.snapshot().feature_entities.keys())

    def num_features(self) -> int:
        return len(self.snapshot().feature_entities)

    # ------------------------------------------------------------------ #
    # Aggregations used by ranking
    # ------------------------------------------------------------------ #
    def features_of_any(self, entity_ids: Iterable[str]) -> dict[SemanticFeature, set[str]]:
        """Features held by any of the entities, with their holders."""
        snapshot = self.snapshot()
        holders: dict[SemanticFeature, set[str]] = defaultdict(set)
        for entity_id in entity_ids:
            for feature in snapshot.features_of(entity_id):
                holders[feature].add(entity_id)
        return dict(holders)

    def candidates_matching_any(
        self,
        features: Iterable[SemanticFeature],
        exclude: Iterable[str] = (),
        limit: int | None = None,
    ) -> list[str]:
        """Entities matching any feature, ordered by how many they match.

        Index-backed equivalent of
        :func:`repro.features.extraction.candidate_entities`: same ordering
        (most shared features first, then identifier), but walking the
        materialised no-copy holder lists instead of per-feature graph
        queries.
        """
        snapshot = self.snapshot()
        excluded = set(exclude)
        counts: Counter[str] = Counter()
        for feature in features:
            for entity_id in snapshot.holders_of(feature):
                if entity_id not in excluded:
                    counts[entity_id] += 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return [entity_id for entity_id, _ in ranked]

    def type_conditional_count(self, feature: SemanticFeature, type_id: str) -> tuple[int, int]:
        """``(||E(pi) ∩ E(c)||, ||E(c)||)`` for the type-based smoothing.

        ``E(c)`` is the set of instances of ``type_id``.  Pairs are memoised
        per snapshot (successor snapshots start fresh), so the ranking
        layer's repeated smoothing lookups cost a dictionary hit.
        """
        return self.snapshot().type_conditional_count(feature, type_id)

    def shared_features(self, left: str, right: str) -> frozenset[SemanticFeature]:
        """Features held by both entities — the explanation evidence."""
        snapshot = self.snapshot()
        return snapshot.features_of(left) & snapshot.features_of(right)

    def feature_frequency_histogram(self) -> dict[int, int]:
        """Histogram of ``||E(pi)||`` values, for dataset reporting."""
        histogram: dict[int, int] = defaultdict(int)
        for entities in self.snapshot().feature_entities.values():
            histogram[len(entities)] += 1
        return dict(histogram)
