"""A precomputed index of semantic features over the whole graph.

For large graphs, recomputing ``E(pi)`` and the features of every entity on
each query is wasteful.  :class:`SemanticFeatureIndex` materialises both maps
once; it is also the place where global feature statistics (frequencies,
type-conditional counts) used by the ranking model's smoothing live.

The index is *epoch-aware*, mirroring ``FieldedIndex`` on the search side:
it remembers the graph mutation epoch it was built at and transparently
refreshes when the graph has changed, so every accessor always reflects the
current graph.  :attr:`epoch` is the cache key the recommendation layer uses
to invalidate memoised scores and cached recommendations.

Refreshing is *incremental*: the graph's triple log is append-only, so the
index remembers how many triples it has processed and applies only the
delta — recomputing the features of the entities the new triples touch —
falling back to a full rebuild when the delta outgrows
:attr:`SemanticFeatureIndex.max_delta_fraction` of the graph (a large
delta touches most entities anyway, and the full pass has better
constants).  A delta-applied index is *equal* to a freshly built one by
construction, enforced by ``tests/test_features_incremental.py``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from ..kg import DISAMBIGUATES, KnowledgeGraph, REDIRECT, STRUCTURAL_PREDICATES, Triple
from .extraction import features_of_entity
from .semantic_feature import SemanticFeature

#: Shared empty holder set returned for unknown features, so that misses on
#: the hot candidate-generation path never allocate a throwaway set.
_EMPTY_HOLDERS: frozenset[str] = frozenset()


class SemanticFeatureIndex:
    """Bidirectional map between entities and their semantic features."""

    #: Largest triple delta, as a fraction of the graph's total triples,
    #: the incremental refresh will apply before falling back to a full
    #: rebuild (mutate-heavy sessions with small deltas stay cheap, bulk
    #: loads take the better-constant full pass).
    max_delta_fraction: float = 0.2

    def __init__(self, graph: KnowledgeGraph, max_delta_fraction: float | None = None) -> None:
        self._graph = graph
        if max_delta_fraction is not None:
            if not 0.0 <= max_delta_fraction <= 1.0:
                raise ValueError("max_delta_fraction must lie in [0, 1]")
            self.max_delta_fraction = max_delta_fraction
        self._entity_features: dict[str, frozenset[SemanticFeature]] = {}
        self._feature_entities: dict[SemanticFeature, set[str]] = defaultdict(set)
        self._built = False
        #: Graph epoch the materialised maps reflect (-1 = never built).
        self._built_epoch = -1
        #: How many triples of the append-only log are reflected.
        self._built_triples = 0
        #: Memoised ``(||E(pi) ∩ E(c)||, ||E(c)||)`` pairs, cleared on rebuild.
        self._type_counts: dict[tuple[SemanticFeature, str], tuple[int, int]] = {}
        self._full_rebuilds = 0
        self._delta_rebuilds = 0
        self._delta_entities = 0

    @classmethod
    def build(cls, graph: KnowledgeGraph) -> "SemanticFeatureIndex":
        """Materialise the index for every entity in the graph."""
        index = cls(graph)
        index.rebuild()
        return index

    def rebuild(self) -> None:
        """Recompute the whole index from the graph's current contents."""
        self._entity_features.clear()
        self._feature_entities = defaultdict(set)
        self._type_counts.clear()
        for entity_id in self._graph.entities():
            features = frozenset(features_of_entity(self._graph, entity_id))
            self._entity_features[entity_id] = features
            for feature in features:
                self._feature_entities[feature].add(entity_id)
        self._built = True
        self._built_epoch = self._graph.epoch
        self._built_triples = len(self._graph)
        self._full_rebuilds += 1

    def _apply_delta(self, new_triples: Iterable[Triple]) -> None:
        """Fold the appended triples into the materialised maps.

        Only object-property edges change an entity's semantic features
        (see :func:`repro.features.extraction.features_of_entity`);
        structural triples merely introduce entities that need an (empty)
        feature entry.  The affected entities' features are recomputed
        from the graph and the holder sets are patched in place; the
        type-conditional memo is dropped wholesale because type
        memberships may have changed.  The triple log is append-only, so
        there is no remove side to the delta.
        """
        affected: set[str] = set()
        for triple in new_triples:
            subject, predicate = triple.subject, triple.predicate
            if triple.is_literal:
                if subject not in self._entity_features:
                    affected.add(subject)
                continue
            if predicate not in STRUCTURAL_PREDICATES:
                # A genuine edge: both endpoints gain a feature.
                affected.add(subject)
                affected.add(triple.object)
                continue
            if subject not in self._entity_features:
                affected.add(subject)
            if predicate in (REDIRECT, DISAMBIGUATES) and (
                triple.object not in self._entity_features
            ):
                affected.add(triple.object)
        for entity_id in affected:
            old = self._entity_features.get(entity_id, frozenset())
            new = frozenset(features_of_entity(self._graph, entity_id))
            if new != old:
                for feature in old - new:
                    holders = self._feature_entities.get(feature)
                    if holders is not None:
                        holders.discard(entity_id)
                        if not holders:
                            del self._feature_entities[feature]
                for feature in new - old:
                    self._feature_entities[feature].add(entity_id)
            self._entity_features[entity_id] = new
        self._type_counts.clear()
        self._built_epoch = self._graph.epoch
        self._built_triples = len(self._graph)
        self._delta_rebuilds += 1
        self._delta_entities += len(affected)

    def _ensure_built(self) -> None:
        if not self._built:
            self.rebuild()
            return
        if self._built_epoch == self._graph.epoch:
            return
        total = len(self._graph)
        delta = total - self._built_triples
        if 0 <= delta <= self.max_delta_fraction * max(total, 1):
            self._apply_delta(self._graph.triples_since(self._built_triples))
        else:
            self.rebuild()

    def rebuild_info(self) -> dict[str, int]:
        """Full-vs-delta refresh counters (``cache_info()`` convention)."""
        return {
            "full_rebuilds": self._full_rebuilds,
            "delta_rebuilds": self._delta_rebuilds,
            "delta_entities": self._delta_entities,
        }

    @property
    def epoch(self) -> int:
        """The graph mutation epoch this index reflects.

        Reading the property refreshes the index if the graph changed, so
        the returned value always matches the data subsequent lookups see.
        Derived caches (memoised probabilities, recommendation results) key
        on this value and are invalidated by any graph mutation.
        """
        self._ensure_built()
        return self._built_epoch

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def features_of(self, entity_id: str) -> frozenset[SemanticFeature]:
        """Features held by an entity (empty set for unknown entities)."""
        self._ensure_built()
        return self._entity_features.get(entity_id, frozenset())

    def holders_of(self, feature: SemanticFeature) -> set[str]:
        """``E(pi)`` without copying — the internal holder set, read-only.

        This is the no-copy accessor the ranking layer's accumulator
        traversal walks term-at-a-time; callers must not mutate the result.
        Unknown features return a shared empty set (no allocation).
        """
        self._ensure_built()
        return self._feature_entities.get(feature, _EMPTY_HOLDERS)

    def entities_matching(self, feature: SemanticFeature) -> set[str]:
        """``E(pi)`` as an independent copy (safe for callers to mutate)."""
        return set(self.holders_of(feature))

    def matching_count(self, feature: SemanticFeature) -> int:
        """``||E(pi)||`` without copying the entity set."""
        return len(self.holders_of(feature))

    def holds(self, entity_id: str, feature: SemanticFeature) -> bool:
        """``e |= pi`` from the materialised index."""
        self._ensure_built()
        return feature in self._entity_features.get(entity_id, frozenset())

    def all_features(self) -> list[SemanticFeature]:
        """Every distinct semantic feature in the graph."""
        self._ensure_built()
        return sorted(self._feature_entities.keys())

    def num_features(self) -> int:
        self._ensure_built()
        return len(self._feature_entities)

    # ------------------------------------------------------------------ #
    # Aggregations used by ranking
    # ------------------------------------------------------------------ #
    def features_of_any(self, entity_ids: Iterable[str]) -> dict[SemanticFeature, set[str]]:
        """Features held by any of the entities, with their holders."""
        self._ensure_built()
        holders: dict[SemanticFeature, set[str]] = defaultdict(set)
        for entity_id in entity_ids:
            for feature in self._entity_features.get(entity_id, frozenset()):
                holders[feature].add(entity_id)
        return dict(holders)

    def candidates_matching_any(
        self,
        features: Iterable[SemanticFeature],
        exclude: Iterable[str] = (),
        limit: int | None = None,
    ) -> list[str]:
        """Entities matching any feature, ordered by how many they match.

        Index-backed equivalent of
        :func:`repro.features.extraction.candidate_entities`: same ordering
        (most shared features first, then identifier), but walking the
        materialised no-copy holder lists instead of per-feature graph
        queries.
        """
        self._ensure_built()
        excluded = set(exclude)
        counts: Counter[str] = Counter()
        for feature in features:
            for entity_id in self._feature_entities.get(feature, _EMPTY_HOLDERS):
                if entity_id not in excluded:
                    counts[entity_id] += 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return [entity_id for entity_id, _ in ranked]

    def type_conditional_count(self, feature: SemanticFeature, type_id: str) -> tuple[int, int]:
        """``(||E(pi) ∩ E(c)||, ||E(c)||)`` for the type-based smoothing.

        ``E(c)`` is the set of instances of ``type_id``.  Pairs are memoised
        per index epoch (the memo is dropped on rebuild), so the ranking
        layer's repeated smoothing lookups cost a dictionary hit.
        """
        self._ensure_built()
        key = (feature, type_id)
        cached = self._type_counts.get(key)
        if cached is not None:
            return cached
        type_members = self._graph.entities_of_type(type_id)
        if not type_members:
            counts = (0, 0)
        else:
            matching = self._feature_entities.get(feature, _EMPTY_HOLDERS)
            counts = (len(matching & type_members), len(type_members))
        self._type_counts[key] = counts
        return counts

    def shared_features(self, left: str, right: str) -> frozenset[SemanticFeature]:
        """Features held by both entities — the explanation evidence."""
        self._ensure_built()
        return self.features_of(left) & self.features_of(right)

    def feature_frequency_histogram(self) -> dict[int, int]:
        """Histogram of ``||E(pi)||`` values, for dataset reporting."""
        self._ensure_built()
        histogram: dict[int, int] = defaultdict(int)
        for entities in self._feature_entities.values():
            histogram[len(entities)] += 1
        return dict(histogram)
