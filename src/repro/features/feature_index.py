"""A precomputed index of semantic features over the whole graph.

For large graphs, recomputing ``E(pi)`` and the features of every entity on
each query is wasteful.  :class:`SemanticFeatureIndex` materialises both maps
once; it is also the place where global feature statistics (frequencies,
type-conditional counts) used by the ranking model's smoothing live.

The index is *epoch-aware*, mirroring ``FieldedIndex`` on the search side:
it remembers the graph mutation epoch it was built at and transparently
rebuilds when the graph has changed, so every accessor always reflects the
current graph.  :attr:`epoch` is the cache key the recommendation layer uses
to invalidate memoised scores and cached recommendations.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..kg import KnowledgeGraph
from .extraction import features_of_entity
from .semantic_feature import SemanticFeature

#: Shared empty holder set returned for unknown features, so that misses on
#: the hot candidate-generation path never allocate a throwaway set.
_EMPTY_HOLDERS: FrozenSet[str] = frozenset()


class SemanticFeatureIndex:
    """Bidirectional map between entities and their semantic features."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._entity_features: Dict[str, FrozenSet[SemanticFeature]] = {}
        self._feature_entities: Dict[SemanticFeature, Set[str]] = defaultdict(set)
        self._built = False
        #: Graph epoch the materialised maps reflect (-1 = never built).
        self._built_epoch = -1
        #: Memoised ``(||E(pi) ∩ E(c)||, ||E(c)||)`` pairs, cleared on rebuild.
        self._type_counts: Dict[Tuple[SemanticFeature, str], Tuple[int, int]] = {}

    @classmethod
    def build(cls, graph: KnowledgeGraph) -> "SemanticFeatureIndex":
        """Materialise the index for every entity in the graph."""
        index = cls(graph)
        index.rebuild()
        return index

    def rebuild(self) -> None:
        """(Re)compute the index from the graph's current contents."""
        self._entity_features.clear()
        self._feature_entities = defaultdict(set)
        self._type_counts.clear()
        for entity_id in self._graph.entities():
            features = frozenset(features_of_entity(self._graph, entity_id))
            self._entity_features[entity_id] = features
            for feature in features:
                self._feature_entities[feature].add(entity_id)
        self._built = True
        self._built_epoch = self._graph.epoch

    def _ensure_built(self) -> None:
        if not self._built or self._built_epoch != self._graph.epoch:
            self.rebuild()

    @property
    def epoch(self) -> int:
        """The graph mutation epoch this index reflects.

        Reading the property refreshes the index if the graph changed, so
        the returned value always matches the data subsequent lookups see.
        Derived caches (memoised probabilities, recommendation results) key
        on this value and are invalidated by any graph mutation.
        """
        self._ensure_built()
        return self._built_epoch

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def features_of(self, entity_id: str) -> FrozenSet[SemanticFeature]:
        """Features held by an entity (empty set for unknown entities)."""
        self._ensure_built()
        return self._entity_features.get(entity_id, frozenset())

    def holders_of(self, feature: SemanticFeature) -> Set[str]:
        """``E(pi)`` without copying — the internal holder set, read-only.

        This is the no-copy accessor the ranking layer's accumulator
        traversal walks term-at-a-time; callers must not mutate the result.
        Unknown features return a shared empty set (no allocation).
        """
        self._ensure_built()
        return self._feature_entities.get(feature, _EMPTY_HOLDERS)

    def entities_matching(self, feature: SemanticFeature) -> Set[str]:
        """``E(pi)`` as an independent copy (safe for callers to mutate)."""
        return set(self.holders_of(feature))

    def matching_count(self, feature: SemanticFeature) -> int:
        """``||E(pi)||`` without copying the entity set."""
        return len(self.holders_of(feature))

    def holds(self, entity_id: str, feature: SemanticFeature) -> bool:
        """``e |= pi`` from the materialised index."""
        self._ensure_built()
        return feature in self._entity_features.get(entity_id, frozenset())

    def all_features(self) -> List[SemanticFeature]:
        """Every distinct semantic feature in the graph."""
        self._ensure_built()
        return sorted(self._feature_entities.keys())

    def num_features(self) -> int:
        self._ensure_built()
        return len(self._feature_entities)

    # ------------------------------------------------------------------ #
    # Aggregations used by ranking
    # ------------------------------------------------------------------ #
    def features_of_any(self, entity_ids: Iterable[str]) -> Dict[SemanticFeature, Set[str]]:
        """Features held by any of the entities, with their holders."""
        self._ensure_built()
        holders: Dict[SemanticFeature, Set[str]] = defaultdict(set)
        for entity_id in entity_ids:
            for feature in self._entity_features.get(entity_id, frozenset()):
                holders[feature].add(entity_id)
        return dict(holders)

    def candidates_matching_any(
        self,
        features: Iterable[SemanticFeature],
        exclude: Iterable[str] = (),
        limit: Optional[int] = None,
    ) -> List[str]:
        """Entities matching any feature, ordered by how many they match.

        Index-backed equivalent of
        :func:`repro.features.extraction.candidate_entities`: same ordering
        (most shared features first, then identifier), but walking the
        materialised no-copy holder lists instead of per-feature graph
        queries.
        """
        self._ensure_built()
        excluded = set(exclude)
        counts: Counter[str] = Counter()
        for feature in features:
            for entity_id in self._feature_entities.get(feature, _EMPTY_HOLDERS):
                if entity_id not in excluded:
                    counts[entity_id] += 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return [entity_id for entity_id, _ in ranked]

    def type_conditional_count(self, feature: SemanticFeature, type_id: str) -> Tuple[int, int]:
        """``(||E(pi) ∩ E(c)||, ||E(c)||)`` for the type-based smoothing.

        ``E(c)`` is the set of instances of ``type_id``.  Pairs are memoised
        per index epoch (the memo is dropped on rebuild), so the ranking
        layer's repeated smoothing lookups cost a dictionary hit.
        """
        self._ensure_built()
        key = (feature, type_id)
        cached = self._type_counts.get(key)
        if cached is not None:
            return cached
        type_members = self._graph.entities_of_type(type_id)
        if not type_members:
            counts = (0, 0)
        else:
            matching = self._feature_entities.get(feature, _EMPTY_HOLDERS)
            counts = (len(matching & type_members), len(type_members))
        self._type_counts[key] = counts
        return counts

    def shared_features(self, left: str, right: str) -> FrozenSet[SemanticFeature]:
        """Features held by both entities — the explanation evidence."""
        self._ensure_built()
        return self.features_of(left) & self.features_of(right)

    def feature_frequency_histogram(self) -> Dict[int, int]:
        """Histogram of ``||E(pi)||`` values, for dataset reporting."""
        self._ensure_built()
        histogram: Dict[int, int] = defaultdict(int)
        for entities in self._feature_entities.values():
            histogram[len(entities)] += 1
        return dict(histogram)
