"""Columnar feature tables — the ranker-side sibling of ``index.columnar``.

The entity ranker's type-grouped decomposition (see
:class:`~repro.ranking.ranking_support.RankingSupport`) walks Python sets
and dicts: holder lists per scored feature, dominant types per candidate,
per-(feature, type) smoothing counts.  :class:`ColumnarFeatureTables`
materialises the same per-epoch state as contiguous numpy arrays so the
walk can run as array kernels (:func:`repro.topk.kernels.columnar_rank`)
and — serialised into the shared-memory snapshot
(:func:`repro.exec.shm.publish_feature_tables`) — in worker processes:

* an **entity ordinal table** assigned in sorted-``entity_id`` order, so
  ordinal comparisons reproduce the ``(-score, entity_id)`` tie-break
  exactly as the search side's doc ordinals do;
* a **holder CSR** (``holder_offsets`` / ``holder_ordinals``): for every
  semantic feature of the epoch, the sorted ordinals of ``E(pi)``;
* **type-group tables**: the distinct dominant types of the epoch, each
  entity's dominant-type ordinal (−1 for untyped), full-membership sizes
  ``||E(c)||``, and an entity→type **membership CSR** over the same type
  universe from which the per-(feature, type) intersection counts
  ``||E(pi) ∩ E(c)||`` are derived lazily (a CSR gather + ``bincount``
  per feature, memoised — the array form of the snapshot's
  ``type_conditional_count`` memo).

The intersection counts use *full* type membership, not dominant types:
an entity whose dominant type is ``c*`` still counts toward every type it
belongs to, exactly like the scalar ``len(E(pi) & E(c))``.  Per-type base
probabilities are computed from these counts with the same float64
division and ``max(·, eps)`` floor as ``RankingSupport.base_probability``.

Tables are built once per pinned :class:`FeatureIndexSnapshot` (memoised
on the snapshot itself) or reconstructed zero-copy from an attached
shared-memory segment on the worker side; the per-query kernel inputs are
assembled by :func:`build_ranker_inputs` identically on both sides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..topk.kernels import RankerKernelInputs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .feature_index import FeatureIndexSnapshot

#: The feature-key triples are JSON-serialised into the snapshot manifest,
#: so the table keys are plain ``(anchor, predicate, direction)`` string
#: tuples (``SemanticFeature.key``), never feature objects.
FeatureKey = tuple[str, str, str]


def _csr_gather(
    offsets: np.ndarray, values: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR rows selected by ``rows`` (one vectorized pass)."""
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    flat = np.repeat(starts, lengths) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(lengths) - lengths, lengths)
    )
    return values[flat]


class ColumnarFeatureTables:
    """Per-epoch array tables of one feature-index snapshot.

    Parent-side instances (built via :meth:`from_snapshot`) additionally
    carry the ``entity_ids`` / ``ordinal_of`` string maps; worker-side
    instances (rebuilt from shared-memory views via
    :meth:`from_arrays`) work purely in ordinal space — candidates
    arrive as ordinal arrays and survivors return as ordinal arrays.
    """

    __slots__ = (
        "epoch",
        "num_entities",
        "entity_ids",
        "ordinal_of",
        "feature_ord",
        "holder_offsets",
        "holder_ordinals",
        "num_types",
        "dominant_ords",
        "type_populations",
        "member_offsets",
        "member_type_ords",
        "_intersections",
        "_query_columns",
    )

    def __init__(
        self,
        epoch: int,
        feature_ord: dict[FeatureKey, int],
        holder_offsets: np.ndarray,
        holder_ordinals: np.ndarray,
        dominant_ords: np.ndarray,
        type_populations: np.ndarray,
        member_offsets: np.ndarray,
        member_type_ords: np.ndarray,
        entity_ids: list[str] | None = None,
    ) -> None:
        self.epoch = epoch
        self.num_entities = int(dominant_ords.size)
        self.entity_ids = entity_ids
        self.ordinal_of = (
            None
            if entity_ids is None
            else {entity_id: ordinal for ordinal, entity_id in enumerate(entity_ids)}
        )
        self.feature_ord = feature_ord
        self.holder_offsets = holder_offsets
        self.holder_ordinals = holder_ordinals
        self.num_types = int(type_populations.size)
        self.dominant_ords = dominant_ords
        self.type_populations = type_populations
        self.member_offsets = member_offsets
        self.member_type_ords = member_type_ords
        #: Memoised per-feature ``||E(pi) ∩ E(c)||`` columns (one entry per
        #: feature ordinal, length ``num_types`` each) — the array form of
        #: the snapshot's ``type_conditional_count`` memo.
        self._intersections: dict[int, np.ndarray] = {}
        #: Memoised stacked ``(base, possible)`` matrices per scored
        #: feature set (see :func:`build_ranker_inputs`) — the columnar
        #: sibling of ``RankingSupport``'s per-(feature, type)
        #: ``base_and_possible`` memo.  Bounded: cleared when it grows
        #: past a few dozen distinct query signatures.
        self._query_columns: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_snapshot(cls, snapshot: FeatureIndexSnapshot) -> ColumnarFeatureTables:
        """Materialise the tables from one pinned snapshot's maps."""
        entity_ids = sorted(snapshot.entity_features)
        ordinal_of = {entity_id: ordinal for ordinal, entity_id in enumerate(entity_ids)}
        dominant = [snapshot.dominant_type(entity_id) for entity_id in entity_ids]
        type_ids = sorted({type_id for type_id in dominant if type_id})
        type_ord = {type_id: ordinal for ordinal, type_id in enumerate(type_ids)}
        dominant_ords = np.fromiter(
            (type_ord[type_id] if type_id else -1 for type_id in dominant),
            dtype=np.int64,
            count=len(entity_ids),
        )
        type_members = snapshot.type_members
        type_populations = np.fromiter(
            (len(type_members.get(type_id, ())) for type_id in type_ids),
            dtype=np.int64,
            count=len(type_ids),
        )

        member_offsets = np.zeros(len(entity_ids) + 1, dtype=np.int64)
        member_rows: list[list[int]] = []
        entity_types = snapshot.entity_types
        for position, entity_id in enumerate(entity_ids):
            row = sorted(
                type_ord[type_id]
                for type_id in entity_types.get(entity_id, ())
                if type_id in type_ord
            )
            member_rows.append(row)
            member_offsets[position + 1] = member_offsets[position] + len(row)
        member_type_ords = np.fromiter(
            (ordinal for row in member_rows for ordinal in row),
            dtype=np.int64,
            count=int(member_offsets[-1]),
        )

        features = sorted(snapshot.feature_entities)
        feature_ord = {feature.key: ordinal for ordinal, feature in enumerate(features)}
        holder_offsets = np.zeros(len(features) + 1, dtype=np.int64)
        holder_rows: list[list[int]] = []
        for position, feature in enumerate(features):
            row = sorted(
                ordinal_of[entity_id]
                for entity_id in snapshot.feature_entities[feature]
            )
            holder_rows.append(row)
            holder_offsets[position + 1] = holder_offsets[position] + len(row)
        holder_ordinals = np.fromiter(
            (ordinal for row in holder_rows for ordinal in row),
            dtype=np.int64,
            count=int(holder_offsets[-1]),
        )
        return cls(
            epoch=snapshot.epoch,
            feature_ord=feature_ord,
            holder_offsets=holder_offsets,
            holder_ordinals=holder_ordinals,
            dominant_ords=dominant_ords,
            type_populations=type_populations,
            member_offsets=member_offsets,
            member_type_ords=member_type_ords,
            entity_ids=entity_ids,
        )

    @classmethod
    def from_arrays(
        cls,
        epoch: int,
        feature_keys: list[FeatureKey],
        holder_offsets: np.ndarray,
        holder_ordinals: np.ndarray,
        dominant_ords: np.ndarray,
        type_populations: np.ndarray,
        member_offsets: np.ndarray,
        member_type_ords: np.ndarray,
    ) -> ColumnarFeatureTables:
        """Reconstruct the tables from (shared-memory) array views.

        The worker-side constructor: no entity id strings travel — the
        kernels select by ordinal, and only the parent maps ordinals back
        to ids for the exact re-scoring epilogue.
        """
        return cls(
            epoch=epoch,
            feature_ord={tuple(key): ordinal for ordinal, key in enumerate(feature_keys)},
            holder_offsets=holder_offsets,
            holder_ordinals=holder_ordinals,
            dominant_ords=dominant_ords,
            type_populations=type_populations,
            member_offsets=member_offsets,
            member_type_ords=member_type_ords,
        )

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def holders(self, feature_ordinal: int) -> np.ndarray:
        """Sorted holder ordinals of one feature (empty for ``-1``)."""
        if feature_ordinal < 0:
            return self.holder_ordinals[:0]
        start = int(self.holder_offsets[feature_ordinal])
        end = int(self.holder_offsets[feature_ordinal + 1])
        return self.holder_ordinals[start:end]

    def intersections(self, feature_ordinal: int) -> np.ndarray:
        """``||E(pi) ∩ E(c)||`` for every type ordinal ``c`` (memoised).

        Computed over *full* type membership via the membership CSR — a
        holder counts toward every type it belongs to, matching the
        scalar ``len(matching & type_members)`` exactly.
        """
        cached = self._intersections.get(feature_ordinal)
        if cached is not None:
            return cached
        if feature_ordinal < 0 or self.num_types == 0:
            counts = np.zeros(self.num_types, dtype=np.int64)
        else:
            gathered = _csr_gather(
                self.member_offsets, self.member_type_ords, self.holders(feature_ordinal)
            )
            counts = np.bincount(gathered, minlength=self.num_types).astype(np.int64)
        self._intersections[feature_ordinal] = counts
        return counts


def build_ranker_inputs(
    tables: ColumnarFeatureTables,
    feature_keys: list[FeatureKey],
    relevance: list[float],
    candidate_ordinals: np.ndarray,
    epsilon: float,
    type_smoothing: bool = True,
) -> RankerKernelInputs:
    """Assemble one query's kernel inputs from the epoch tables.

    Runs identically in the parent and in attached workers: the scored
    features arrive as ``(key triple, relevance)`` pairs, the candidates
    as entity ordinals (any order; sorted here so the survivor selection
    tie-break holds).  Per-type base probabilities repeat the scalar
    arithmetic — float64 ``intersection / population`` with the
    ``max(·, eps)`` floor, ``eps`` everywhere when smoothing is off or
    the type is the untyped slot — and the correction-possible gate (a
    non-zero intersection for typed groups, a non-empty holder list for
    untyped candidates) shapes the suffix bounds exactly as
    ``RankingSupport.base_and_possible`` does.
    """
    candidate_ordinals = np.sort(np.asarray(candidate_ordinals, dtype=np.int64))
    num_candidates = int(candidate_ordinals.size)
    num_columns = len(feature_keys)
    scores = np.asarray(relevance, dtype=np.float64)
    feature_ords = [tables.feature_ord.get(tuple(key), -1) for key in feature_keys]

    # Local type universe: the distinct dominant-type ordinals among the
    # candidates (−1, when present, is the untyped slot and sorts first).
    dominant = tables.dominant_ords[candidate_ordinals]
    local_types = np.unique(dominant)
    type_index = np.searchsorted(local_types, dominant)
    num_local = int(local_types.size)

    typed = local_types >= 0
    typed_idx = np.maximum(local_types, 0)
    ord_array = np.asarray(feature_ords, dtype=np.int64)
    known = ord_array >= 0
    safe_ords = np.where(known, ord_array, 0)
    holder_sizes = np.where(
        known,
        tables.holder_offsets[safe_ords + 1] - tables.holder_offsets[safe_ords],
        0,
    )
    # The global ``(base, possible)`` matrices of this feature set — one
    # row per epoch type plus a trailing untyped row — memoised on the
    # tables (candidate-independent, like the scalar walk's
    # per-(feature, type) ``base_and_possible`` memo).  Typed rows repeat
    # the scalar arithmetic: float64 ``||E(pi) ∩ E(c)|| / ||E(c)||`` with
    # the ``max(·, eps)`` floor; correction possible iff the intersection
    # is non-zero.  The untyped row stays at eps, possible iff the holder
    # list is non-empty (the scalar untyped fallback).
    memo_key = (tuple(feature_ords), float(epsilon), bool(type_smoothing))
    memoised = tables._query_columns.get(memo_key)
    if memoised is None:
        num_rows = tables.num_types + 1
        base_all = np.full((num_rows, num_columns), epsilon, dtype=np.float64)
        possible_all = np.zeros((num_rows, num_columns), dtype=bool)
        possible_all[num_rows - 1] = holder_sizes > 0
        if tables.num_types and num_columns:
            inter = np.stack(
                [tables.intersections(ordinal) for ordinal in feature_ords], axis=1
            )
            possible_all[: tables.num_types] = inter > 0
            if type_smoothing:
                populations = tables.type_populations.astype(np.float64)[:, None]
                smoothed = np.divide(
                    inter.astype(np.float64),
                    populations,
                    out=np.zeros((tables.num_types, num_columns), dtype=np.float64),
                    where=populations > 0,
                )
                base_all[: tables.num_types] = np.maximum(smoothed, epsilon)
        if len(tables._query_columns) >= 64:
            tables._query_columns.clear()
        tables._query_columns[memo_key] = memoised = (base_all, possible_all)
    base_all, possible_all = memoised
    rows = np.where(typed, typed_idx, tables.num_types)
    base = base_all[rows]
    possible = possible_all[rows]

    corrections = (1.0 - base) * scores
    bounded = np.where(possible & (scores > 0.0), corrections, 0.0)
    suffix = np.zeros((num_local, num_columns + 1), dtype=np.float64)
    if num_columns:
        suffix[:, :num_columns] = np.cumsum(bounded[:, ::-1], axis=1)[:, ::-1]
    base_scores = base @ scores if num_columns else np.zeros(num_local, dtype=np.float64)

    # One searchsorted over the concatenated holder lists, then plain
    # slices at the (post-match) column boundaries — replaces a
    # per-column searchsorted loop (and avoids ``np.split`` overhead).
    if num_candidates and num_columns and int(holder_sizes.sum()):
        concat = np.concatenate([tables.holders(ordinal) for ordinal in feature_ords])
        positions = np.searchsorted(candidate_ordinals, concat)
        positions = np.minimum(positions, num_candidates - 1)
        matched = candidate_ordinals[positions] == concat
        matched_total = np.concatenate(([0], np.cumsum(matched)))
        ends = np.cumsum(holder_sizes)
        filtered = positions[matched]
        bounds = matched_total[ends].tolist()
        starts = matched_total[ends - holder_sizes].tolist()
        holder_positions = [
            filtered[start:end] for start, end in zip(starts, bounds)
        ]
    else:
        holder_positions = [np.empty(0, dtype=np.int64) for _ in range(num_columns)]

    return RankerKernelInputs(
        ordinals=candidate_ordinals,
        type_index=np.asarray(type_index, dtype=np.int64),
        type_counts=np.bincount(type_index, minlength=num_local).astype(np.int64),
        base_scores=base_scores,
        corrections=corrections,
        suffix_bounds=suffix,
        holder_positions=tuple(holder_positions),
    )


def columnar_tables(snapshot: Any) -> ColumnarFeatureTables | None:
    """The snapshot's tables, built once and memoised on the snapshot.

    Returns ``None`` for index objects without the snapshot memo slot
    (e.g. a bare graph passed where an index was expected), so callers
    can fall back to the scalar walk.
    """
    if not hasattr(snapshot, "_columnar"):
        return None
    tables = snapshot._columnar
    if tables is None:
        # Benign race: two pinned readers may build concurrently; both
        # results are equal and either assignment is fine.
        tables = ColumnarFeatureTables.from_snapshot(snapshot)
        snapshot._columnar = tables
    return tables


__all__ = [
    "ColumnarFeatureTables",
    "FeatureKey",
    "build_ranker_inputs",
    "columnar_tables",
]
