"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs may fail; inserting ``src`` at the front of ``sys.path`` lets the
test and benchmark suites run against the working tree either way.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
