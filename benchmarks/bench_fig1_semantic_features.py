"""E2 (Fig 1): semantic features of an entity and the entity-type view.

Figure 1 of the paper shows (a) the semantic features around
``Forrest_Gump`` and (b) the entity types those features point at (Actor,
Director, ...), i.e. the possible search directions.  This bench reproduces
both views and measures feature-extraction throughput.
"""

from __future__ import annotations

import pytest

from repro.eval import print_experiment
from repro.features import (
    SemanticFeatureIndex,
    anchor_type_directions,
    features_of_entity,
)


def test_fig1_views(movie_kg):
    """Print Fig 1-a (semantic features) and Fig 1-b (type directions)."""
    features = features_of_entity(movie_kg, "dbr:Forrest_Gump")
    feature_rows = [
        {
            "semantic_feature": feature.notation(),
            "anchor_type": movie_kg.dominant_type(feature.anchor) or "(untyped)",
        }
        for feature in sorted(features, key=lambda f: f.notation())
    ]
    print_experiment("E2 / Fig 1-a — semantic features of Forrest_Gump", feature_rows)

    directions = anchor_type_directions(movie_kg, "dbr:Forrest_Gump")
    direction_rows = [
        {"entity_type": type_id, "features": count}
        for type_id, count in sorted(directions.items(), key=lambda kv: -kv[1])
    ]
    print_experiment("E2 / Fig 1-b — possible search directions", direction_rows)

    notations = {feature.notation() for feature in features}
    assert "dbr:Tom_Hanks:dbo:starring" in notations
    assert directions.get("dbo:Actor", 0) >= 3  # Hanks, Sinise, Wright
    assert directions.get("dbo:Director", 0) >= 1


@pytest.mark.benchmark(group="fig1-features")
def test_bench_feature_extraction_one_entity(benchmark, movie_kg):
    """Time to extract the semantic features of one entity."""
    features = benchmark(features_of_entity, movie_kg, "dbr:Forrest_Gump")
    assert features


@pytest.mark.benchmark(group="fig1-features")
def test_bench_feature_index_build(benchmark, movie_kg):
    """Time to materialise the semantic-feature index for the whole graph."""
    index = benchmark(SemanticFeatureIndex.build, movie_kg)
    assert index.num_features() > 0
