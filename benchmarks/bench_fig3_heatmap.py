"""E4 (Fig 3): the matrix interface and the seven-level heat map.

Figure 3 is the PivotE workspace: recommended entities (x-axis), recommended
semantic features (y-axis) and the correlation heat map (explanation area).
This bench reproduces the matrix for the "Forrest Gump" query, verifies the
seven discrete levels and measures matrix/heat-map construction time.
"""

from __future__ import annotations

import pytest

from repro.eval import print_experiment
from repro.ranking import build_correlation_matrix
from repro.viz import build_heatmap, render_matrix_ascii


@pytest.fixture(scope="module")
def recommendation(movie_system):
    return movie_system.recommend(["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])


def test_fig3_matrix_contents(movie_system, recommendation):
    """Print the reproduced matrix and verify its structure."""
    matrix = movie_system.matrix_for(recommendation)
    print(render_matrix_ascii(matrix, max_entities=8, max_features=12))

    level_rows = [
        {"level": level, "cells": count}
        for level, count in sorted(matrix.heatmap.level_counts().items())
    ]
    print_experiment("E4 / Fig 3 — heat-map level distribution (7 levels)", level_rows)

    assert matrix.heatmap.num_levels == 7
    assert matrix.heatmap.levels.max() <= 6
    # Entities recommended for the two Tom Hanks seeds are other Tom Hanks films.
    top = recommendation.entity_ids()[:4]
    assert any(entity in top for entity in ("dbr:Cast_Away", "dbr:The_Green_Mile_(film)", "dbr:Saving_Private_Ryan", "dbr:Philadelphia_(film)"))
    # The y-axis surfaces the shared-star feature.
    assert any("Tom_Hanks" in notation for notation in recommendation.feature_notations()[:5])


@pytest.mark.benchmark(group="fig3-heatmap")
def test_bench_correlation_matrix(benchmark, movie_system, recommendation):
    """Time to compute the raw entity x feature correlation matrix."""
    model = movie_system.recommendation_engine.expander.feature_ranker.probability_model
    matrix = benchmark(
        build_correlation_matrix, model, recommendation.entities, recommendation.features
    )
    assert matrix.shape[0] == len(recommendation.entities)


@pytest.mark.benchmark(group="fig3-heatmap")
def test_bench_heatmap_bucketing(benchmark, movie_system, recommendation):
    """Time to discretise the correlations into the seven levels."""
    heatmap = benchmark(build_heatmap, recommendation.correlations)
    assert heatmap.num_levels == 7


@pytest.mark.benchmark(group="fig3-heatmap")
def test_bench_full_matrix_view(benchmark, movie_system, recommendation):
    """Time to assemble the complete matrix view shown to the user."""
    matrix = benchmark(movie_system.matrix_for, recommendation)
    assert matrix.entities
