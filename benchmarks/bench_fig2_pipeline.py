"""E3 (Fig 2): the end-to-end architecture pipeline.

Figure 2 shows the architecture: a query flows from the interface to the
search engine and the recommendation engine and back.  This bench measures
the latency of each stage and of the full keyword-to-matrix pipeline, which
is the paper's implicit "interactive response" claim.
"""

from __future__ import annotations

import pytest

from repro.eval import Stopwatch, print_experiment


def test_fig2_stage_breakdown(movie_system):
    """Print a per-stage latency breakdown of the pipeline."""
    watch = Stopwatch()
    keywords = "forrest gump"

    for _ in range(5):
        with watch.measure("1-search-engine"):
            hits = movie_system.search(keywords)
        seeds = [hit.entity_id for hit in hits[:3]]
        with watch.measure("2-recommendation-engine"):
            recommendation = movie_system.recommend(seeds)
        with watch.measure("3-heatmap+matrix"):
            movie_system.matrix_for(recommendation)

    rows = [
        {"stage": label, **{k: v for k, v in stats.items() if k in ("mean_ms", "p95_ms")}}
        for label, stats in watch.report().items()
    ]
    print_experiment("E3 / Fig 2 — pipeline latency breakdown", rows)
    assert hits and recommendation.entities


@pytest.mark.benchmark(group="fig2-pipeline")
def test_bench_search_stage(benchmark, movie_system):
    hits = benchmark(movie_system.search, "forrest gump")
    assert hits[0].entity_id == "dbr:Forrest_Gump"


@pytest.mark.benchmark(group="fig2-pipeline")
def test_bench_recommendation_stage(benchmark, movie_system):
    recommendation = benchmark(
        movie_system.recommend, ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"]
    )
    assert recommendation.entities


@pytest.mark.benchmark(group="fig2-pipeline")
def test_bench_full_pipeline(benchmark, movie_system):
    """Keyword query -> hits -> recommendation -> matrix, end to end."""

    def pipeline():
        session = movie_system.start_session()
        response = movie_system.submit_keywords(session, "forrest gump")
        return response

    response = benchmark(pipeline)
    assert response.matrix is not None
