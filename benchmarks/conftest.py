"""Shared fixtures for the benchmark suite.

Benchmarks reuse one movie KG / PivotE system per session so that the
measured time is the operation under test, not dataset construction.  Each
benchmark module prints the rows of the experiment it reproduces (the
"table" of EXPERIMENTS.md) in addition to the pytest-benchmark timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import PivotE  # noqa: E402
from repro.datasets import MovieKGConfig, build_movie_kg  # noqa: E402
from repro.expansion import EntitySetExpander  # noqa: E402
from repro.kg import KnowledgeGraph  # noqa: E402


@pytest.fixture(scope="session")
def movie_kg() -> KnowledgeGraph:
    """The standard movie KG used by the quality benchmarks."""
    return build_movie_kg(MovieKGConfig())


@pytest.fixture(scope="session")
def movie_system(movie_kg: KnowledgeGraph) -> PivotE:
    """A fully built PivotE system over the movie KG."""
    return PivotE(movie_kg)


@pytest.fixture(scope="session")
def movie_expander(movie_system: PivotE) -> EntitySetExpander:
    """The expansion engine sharing the system's feature index."""
    return movie_system.recommendation_engine.expander
