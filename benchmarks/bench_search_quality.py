"""E7: keyword entity-search quality — five-field MLM vs. baselines.

The paper's search engine (§2.2) scores entities with a mixture of language
models over the five-field representation "since multi-fielded entity
representation has been proved to be beneficial for entity search".  This
bench quantifies that claim on a synthetic query workload: the five-field
mixture vs. a names-only language model vs. BM25F.  Expected shape: the
five-field mixture wins on MRR/MAP because many queries only match via
categories, attributes, aliases or related-entity names.
"""

from __future__ import annotations

import pytest

from repro.datasets import search_tasks_from_labels
from repro.eval import SearchEvaluator, method_comparison_rows, print_experiment
from repro.search import SearchEngine, parse_query

METRICS = ("rr", "ap", "p@1", "recall@10", "ndcg@10")


@pytest.fixture(scope="module")
def engine(movie_kg) -> SearchEngine:
    return SearchEngine.from_graph(movie_kg)


@pytest.fixture(scope="module")
def tasks(movie_kg):
    return search_tasks_from_labels(movie_kg, num_tasks=40)


def test_search_quality_comparison(engine, tasks):
    """Main comparison table of the three retrieval models."""
    evaluator = SearchEvaluator(engine, top_k=20)
    results = evaluator.compare(tasks)
    rows = method_comparison_rows(
        {name: result.metrics for name, result in results.items()}, metrics=METRICS
    )
    print_experiment(
        "E7 — keyword entity search quality (40 name/category queries)",
        rows,
        notes="expected shape: mlm-5field >= lm-names-only and competitive with bm25f",
    )
    mlm = results["mlm-5field"]
    assert mlm.metric("rr") >= results["lm-names-only"].metric("rr") - 0.05
    assert mlm.metric("rr") > 0.4


@pytest.mark.benchmark(group="search-quality")
def test_bench_mlm_query(benchmark, engine):
    hits = benchmark(engine.search, "forrest gump")
    assert hits[0].entity_id == "dbr:Forrest_Gump"


@pytest.mark.benchmark(group="search-quality")
def test_bench_bm25f_query(benchmark, engine):
    scorer = engine.bm25f_scorer()
    results = benchmark(scorer.search, parse_query("forrest gump"))
    assert results


@pytest.mark.benchmark(group="search-quality")
def test_bench_index_build(benchmark, movie_kg):
    """Time to build the full five-field index from the graph."""
    engine = benchmark(SearchEngine.from_graph, movie_kg)
    assert engine.num_indexed() == movie_kg.num_entities()
