"""E7: keyword entity-search quality — five-field MLM vs. baselines.

The paper's search engine (§2.2) scores entities with a mixture of language
models over the five-field representation "since multi-fielded entity
representation has been proved to be beneficial for entity search".  This
bench quantifies that claim on a synthetic query workload: the five-field
mixture vs. a names-only language model vs. BM25F.  Expected shape: the
five-field mixture wins on MRR/MAP because many queries only match via
categories, attributes, aliases or related-entity names.
"""

from __future__ import annotations

import pytest

from repro.datasets import search_tasks_from_labels
from repro.eval import SearchEvaluator, Stopwatch, method_comparison_rows, print_experiment
from repro.search import SearchEngine, parse_query

METRICS = ("rr", "ap", "p@1", "recall@10", "ndcg@10")


@pytest.fixture(scope="module")
def engine(movie_kg) -> SearchEngine:
    return SearchEngine.from_graph(movie_kg)


@pytest.fixture(scope="module")
def tasks(movie_kg):
    return search_tasks_from_labels(movie_kg, num_tasks=40)


def test_search_quality_comparison(engine, tasks):
    """Main comparison table of the three retrieval models."""
    evaluator = SearchEvaluator(engine, top_k=20)
    results = evaluator.compare(tasks)
    rows = method_comparison_rows(
        {name: result.metrics for name, result in results.items()}, metrics=METRICS
    )
    print_experiment(
        "E7 — keyword entity search quality (40 name/category queries)",
        rows,
        notes="expected shape: mlm-5field >= lm-names-only and competitive with bm25f",
    )
    mlm = results["mlm-5field"]
    assert mlm.metric("rr") >= results["lm-names-only"].metric("rr") - 0.05
    assert mlm.metric("rr") > 0.4


def test_search_accumulator_ab(engine, tasks):
    """A/B: the accumulator hot path vs. the seed's exhaustive scoring.

    Rankings must be identical on the whole E7 workload; the accumulator
    path should win on latency (reported, not asserted — CI machines vary).
    """
    scorer = engine.mlm_scorer
    watch = Stopwatch()
    for task in tasks:
        query = parse_query(task.query)
        with watch.measure("accumulator"):
            fast = scorer.search(query, top_k=20)
        with watch.measure("exhaustive"):
            slow = scorer.search_exhaustive(query, top_k=20)
        assert [(r.doc_id, r.score) for r in fast] == [(r.doc_id, r.score) for r in slow]
    accumulator = watch.stats("accumulator").as_dict()
    exhaustive = watch.stats("exhaustive").as_dict()
    speedup = (
        exhaustive["mean_ms"] / accumulator["mean_ms"] if accumulator["mean_ms"] > 0 else 0.0
    )
    print_experiment(
        "E7b — accumulator vs. exhaustive scoring (movie KG, 40 queries)",
        [
            {"mode": "exhaustive", "mean_ms": exhaustive["mean_ms"], "p95_ms": exhaustive["p95_ms"]},
            {"mode": "accumulator", "mean_ms": accumulator["mean_ms"], "p95_ms": accumulator["p95_ms"]},
            {"mode": "speedup", "mean_ms": speedup, "p95_ms": 0.0},
        ],
        notes="rankings byte-identical on all tasks; speedup row is exhaustive/accumulator",
    )


@pytest.mark.benchmark(group="search-quality")
def test_bench_mlm_query(benchmark, engine):
    hits = benchmark(engine.search, "forrest gump")
    assert hits[0].entity_id == "dbr:Forrest_Gump"


@pytest.mark.benchmark(group="search-quality")
def test_bench_mlm_query_exhaustive(benchmark, engine):
    """The seed scoring path, kept benchmarked for the perf trajectory."""
    scorer = engine.mlm_scorer
    query = parse_query("forrest gump")
    results = benchmark(scorer.search_exhaustive, query)
    assert results[0].doc_id == "dbr:Forrest_Gump"


@pytest.mark.benchmark(group="search-quality")
def test_bench_bm25f_query(benchmark, engine):
    scorer = engine.bm25f_scorer()
    results = benchmark(scorer.search, parse_query("forrest gump"))
    assert results


@pytest.mark.benchmark(group="search-quality")
def test_bench_index_build(benchmark, movie_kg):
    """Time to build the full five-field index from the graph."""
    engine = benchmark(SearchEngine.from_graph, movie_kg)
    assert engine.num_indexed() == movie_kg.num_entities()
