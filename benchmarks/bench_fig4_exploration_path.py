"""E5 (Fig 4): the exploratory search path over a scripted demo session.

Figure 4 shows the exploratory path of a session (queries as nodes,
operations as edges).  This bench scripts the two demo scenarios of §3
(entity investigation, then a pivot into the Actor domain and a timeline
traceback), verifies the resulting path structure, and measures the cost of
replaying the whole session.
"""

from __future__ import annotations

import pytest

from repro.eval import print_experiment
from repro.features import SemanticFeature
from repro.viz import render_path_ascii, session_to_dict

TOM_HANKS_STARRING = SemanticFeature("dbr:Tom_Hanks", "dbo:starring")


def run_demo_session(system, name: str = "fig4"):
    """Replay the §3 demo scenarios and return the session."""
    session = system.start_session(name)
    system.submit_keywords(session, "Forrest Gump")
    system.lookup_in_session(session, "dbr:Forrest_Gump")
    system.select_entity(session, "dbr:Forrest_Gump")
    system.pin_feature(session, TOM_HANKS_STARRING)
    system.pivot(session, "dbr:Tom_Hanks")
    session.revisit(2)  # traceback to the investigation query
    system.select_entity(session, "dbr:Apollo_13_(film)")
    return session


def test_fig4_path_structure(movie_system):
    """Print the reproduced exploratory path and verify its shape."""
    session = run_demo_session(movie_system, "fig4-structure")
    print(render_path_ascii(session.path))

    payload = session_to_dict(session)
    rows = [
        {"metric": "timeline steps", "value": len(payload["timeline"])},
        {"metric": "path nodes", "value": len(payload["path"]["nodes"])},
        {"metric": "path edges", "value": len(payload["path"]["edges"])},
        {"metric": "lookups", "value": len(payload["lookups"])},
        {"metric": "pivots", "value": payload["behaviour"].get("pivot", 0)},
    ]
    print_experiment("E5 / Fig 4 — exploratory path statistics", rows)

    assert payload["behaviour"]["pivot"] == 1
    assert payload["behaviour"]["submit"] == 1
    # The traceback creates a branch: one node has two outgoing edges.
    out_degrees = {}
    for edge in payload["path"]["edges"]:
        out_degrees[edge["source"]] = out_degrees.get(edge["source"], 0) + 1
    assert max(out_degrees.values()) >= 2


@pytest.mark.benchmark(group="fig4-session")
def test_bench_full_demo_session(benchmark, movie_system):
    """Time to replay the full scripted demo session (all recommendations)."""
    session = benchmark(run_demo_session, movie_system)
    # submit + lookup + select + pin + pivot + select = 6 recorded operations
    # (the timeline traceback itself is not an operation).
    assert len(session.timeline) == 6


@pytest.mark.benchmark(group="fig4-session")
def test_bench_session_export(benchmark, movie_system):
    """Time to serialise a finished session for the UI."""
    session = run_demo_session(movie_system, "fig4-export")
    payload = benchmark(session_to_dict, session)
    assert payload["path"]["nodes"]
