"""PR 9: cold-start latency — attaching a durable snapshot vs rebuilding.

The durable storage tier's reason to exist: a process that cold-starts
from ``PivotE.save(dir)`` should reach serving readiness *faster* than
one that rebuilds the whole system from the knowledge graph — graph
replay + posting-count replay + holder-CSR inversion versus document
construction, tokenisation and per-entity feature extraction.

Per KG size this bench measures the two cold-start paths a fresh
process can take from the same on-disk system directory:

* ``rebuild_ms`` — replay the triple log (``load_graph``) and rebuild
  every derived tier in RAM (``PivotE(graph)``), the path every
  pre-PR-9 process paid on startup;
* ``load_ms``    — attach the durable snapshots (``PivotE.load``):
  the same triple-log replay, but the index and feature tiers come
  back as zero-copy views over the mmap'd segments.

Both are best of ``--repeats`` interleaved attempts (the page cache is
warm after the first, which is exactly the serving-fleet scenario: N
processes cold-start from the same files), and both include the graph
replay, so
``coldstart_ratio = rebuild_ms / load_ms`` isolates what the storage
tier actually replaces — above 1.0 the attach path wins.  ``save_ms``
(one ``PivotE.save``) rides along for context.

Before any timing is trusted, the bench verifies the loaded system's
search *and* recommendation rankings are byte-identical to the built
system's and that every component attached (zero storage failures); a
bench that silently fell back to rebuilding would otherwise report a
meaningless ratio.

Run as a script to produce the machine-readable baseline::

    python benchmarks/bench_cold_start.py --sizes 200,2000 \
        --output BENCH_cold_start.json --min-coldstart-ratio 1.0

which is what the CI bench-smoke job does; the gate fails the run if
attaching is not at least as fast as rebuilding at the largest size.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.datasets import RandomKGConfig, build_random_kg  # noqa: E402
from repro.engine import PivotE  # noqa: E402
from repro.eval import print_experiment  # noqa: E402
from repro.storage import graph_path, load_graph  # noqa: E402

SIZES = (200, 500, 1000, 2000)


def _queries(graph, count: int = 5) -> list[str]:
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    labels = [graph.label(entities[index]) for index in range(0, len(entities), step)]
    return labels[:count]


def _seeds(graph) -> list[str]:
    largest = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    return sorted(graph.entities_of_type(largest))[:2]


def _signatures(system: PivotE, queries, seeds):
    search = [
        [(hit.entity_id, hit.score) for hit in system.search(query)]
        for query in queries
    ]
    recommendation = system.recommend(seeds)
    return search, [
        (entity.entity_id, entity.score) for entity in recommendation.entities
    ]


def measure_cold_start(size: int, repeats: int = 5) -> dict[str, object]:
    """Rebuild-vs-attach cold-start timings (and the equivalence check)."""
    graph = build_random_kg(RandomKGConfig(num_entities=size, seed=29))
    built = PivotE(graph)
    queries = _queries(graph)
    seeds = _seeds(graph)
    expected = _signatures(built, queries, seeds)

    directory = tempfile.mkdtemp(prefix=f"pivote-coldstart-{size}-")
    try:
        started = time.perf_counter()
        built.save(directory)
        save_ms = (time.perf_counter() - started) * 1000.0
        built.close()

        # Interleave the two paths so background noise inflates both
        # equally — three unlucky attempts in a row on one side would
        # otherwise swing the ratio arbitrarily on a busy machine.
        rebuild_ms = float("inf")
        load_ms = float("inf")
        identical = True
        failures = 0
        attached_bytes = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            rebuilt = PivotE(load_graph(graph_path(directory)))
            rebuild_ms = min(rebuild_ms, (time.perf_counter() - started) * 1000.0)
            rebuilt.close()

            started = time.perf_counter()
            loaded = PivotE.load(directory)
            elapsed = (time.perf_counter() - started) * 1000.0
            load_ms = min(load_ms, elapsed)
            storage = loaded.stats().storage
            failures = max(failures, storage.failures if storage else 0)
            attached_bytes = storage.attached_bytes if storage else 0
            if _signatures(loaded, queries, seeds) != expected:
                identical = False
            loaded.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    return {
        "entities": size,
        "triples": len(graph),
        "rebuild_ms": round(rebuild_ms, 3),
        "save_ms": round(save_ms, 3),
        "load_ms": round(load_ms, 3),
        "coldstart_ratio": round(rebuild_ms / load_ms, 3) if load_ms else 0.0,
        "snapshot_bytes": attached_bytes,
        "storage_failures": failures,
        "identical": identical,
    }


@pytest.mark.parametrize("size", (200,))
def test_cold_start_smoke(size):
    """Tier-2 smoke: the round trip is identical and attaches cleanly."""
    row = measure_cold_start(size, repeats=1)
    assert row["identical"]
    assert row["storage_failures"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sizes",
        default=",".join(str(size) for size in SIZES),
        help="comma-separated KG sizes (entities) to measure",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="interleaved rebuild/load attempts per size (best of each kept)",
    )
    parser.add_argument("--output", type=Path, default=None, help="write JSON report here")
    parser.add_argument(
        "--min-coldstart-ratio",
        type=float,
        default=None,
        help=(
            "fail unless rebuild_ms over load_ms reaches this at the largest "
            "size (1.0 = attaching the snapshots at-or-faster than replaying "
            "the graph and rebuilding every derived tier)"
        ),
    )
    args = parser.parse_args(argv)

    sizes = [int(token) for token in str(args.sizes).split(",") if token.strip()]
    rows = [measure_cold_start(size, repeats=args.repeats) for size in sizes]

    print_experiment(
        "PR 9: durable snapshot cold start (attach vs rebuild)",
        rows,
        columns=(
            "entities",
            "triples",
            "rebuild_ms",
            "save_ms",
            "load_ms",
            "coldstart_ratio",
            "snapshot_bytes",
            "storage_failures",
            "identical",
        ),
    )

    exit_code = 0
    for row in rows:
        if not row["identical"] or row["storage_failures"]:
            print(
                f"FAIL: size {row['entities']} round trip degraded "
                f"(identical={row['identical']}, failures={row['storage_failures']})"
            )
            exit_code = 1
    largest = rows[-1]
    if args.min_coldstart_ratio is not None and exit_code == 0:
        if largest["coldstart_ratio"] < args.min_coldstart_ratio:
            print(
                f"FAIL: coldstart_ratio {largest['coldstart_ratio']} < "
                f"{args.min_coldstart_ratio} at {largest['entities']} entities"
            )
            exit_code = 1
        else:
            print(
                f"OK: coldstart_ratio {largest['coldstart_ratio']} >= "
                f"{args.min_coldstart_ratio} at {largest['entities']} entities"
            )

    if args.output:
        args.output.write_text(json.dumps({"cold_start": rows}, indent=2) + "\n")
        print(f"wrote {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
