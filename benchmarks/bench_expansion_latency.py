"""E10: traversal/expansion latency, columnar graph topology vs scalar walks.

PR 10 gave the knowledge graph itself the columnar treatment the postings
(PR 6) and feature tables (PR 8) already had: ``repro.kg.topology`` holds
a per-epoch CSR adjacency over string-sorted entity ordinals plus an
interval encoding of the type containment forest, and the traversal
helpers route through frontier-at-a-time kernels.  This bench A/Bs the
three traversal stages the expansion/exploration pipeline leans on as the
random KG grows:

* ``bfs``     — ``bfs_reachable`` (level-synchronous frontier gathers over
  both CSR directions) vs ``bfs_reachable_scalar`` (the FIFO per-edge
  Python walk);
* ``connect`` — ``connecting_entities`` (sorted-array intersect of the two
  one-hop neighbourhoods + CSR join) vs ``connecting_entities_scalar``;
* ``filter``  — ``EntitySetExpander.restrict_candidates`` with
  ``graph_topology=True`` (``searchsorted`` intersect against the
  interval-derived member row) vs the scalar ``entity_id in members``
  probe (``graph_topology=False``).

Every arm pair is verified byte-identical *before* any timing.  The
headline ``topology_ratio`` is stage-level — summed scalar traversal
wall-clock over summed kernel wall-clock — for the same reason the
recommend bench's ``columnar_ratio`` is: the surrounding recommendation
pipeline (feature ranking, entity scoring, matrix assembly) is
arm-independent, so end-to-end means only dilute the comparison.  The
end-to-end view is still recorded (``expand_scalar_ms`` /
``expand_topology_ms``: a domain-restricted ``expand()`` under each
knob), together with the one-time topology ``build_ms`` and the graph's
traversal counters.

Run as a script to produce the machine-readable baseline::

    python benchmarks/bench_expansion_latency.py --sizes 200,2000 \
        --output BENCH_expansion_latency.json --min-topology-ratio 1.5

which is what the CI bench-smoke job does (gate 1.0 on the tiny smoke
leg, 1.5 at 2000 entities); the committed ``BENCH_expansion_latency.json``
at the repo root is the perf trajectory baseline for future PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.config import RankingConfig  # noqa: E402
from repro.datasets import RandomKGConfig, build_random_kg  # noqa: E402
from repro.eval import Stopwatch, print_experiment  # noqa: E402
from repro.expansion import EntitySetExpander  # noqa: E402
from repro.features import SemanticFeatureIndex  # noqa: E402
from repro.kg import (  # noqa: E402
    GraphTopology,
    bfs_reachable,
    bfs_reachable_scalar,
    connecting_entities,
    connecting_entities_scalar,
    graph_topology,
    traversal_stats,
)

SIZES = (200, 500, 1000, 2000)

#: Same hub-anchored generator parameters as the recommend bench: the
#: Zipf target skew produces the popular anchors whose dense one- and
#: two-hop neighbourhoods the traversal helpers actually chew through.
KG_KWARGS = {"target_skew": 1.5, "avg_out_degree": 8.0}

#: Traversal workload per repeat: BFS probes, connecting pairs and the
#: number of types the candidate filter sweeps.
PROBE_COUNT = 6
PAIR_COUNT = 8
MAX_HOPS = 2


def _build_graph(size: int):
    return build_random_kg(RandomKGConfig(num_entities=size, seed=42, **KG_KWARGS))


def _probes(graph, count: int) -> list[str]:
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    return entities[::step][:count]


def _pairs(graph, count: int) -> list[tuple[str, str]]:
    """Deterministic high-fan-in pairs: entities sharing popular anchors."""
    probes = _probes(graph, count * 2)
    return [(probes[i], probes[-(i + 1)]) for i in range(count)]


def measure_expansion_ab(graph, repeats: int = 5) -> dict[str, object]:
    """Topology-vs-scalar traversal latency on one graph.

    Returns a row with per-stage means, the stage-level ``topology_ratio``
    and an ``identical`` flag confirming every arm pair agreed byte for
    byte before timing.
    """
    index = SemanticFeatureIndex.build(graph)
    expander_on = EntitySetExpander(
        graph, feature_index=index, config=RankingConfig(graph_topology=True)
    )
    expander_off = EntitySetExpander(
        graph, feature_index=index, config=RankingConfig(graph_topology=False)
    )
    probes = _probes(graph, PROBE_COUNT)
    pairs = _pairs(graph, PAIR_COUNT)
    types = sorted(graph.types())
    domain = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    seeds = sorted(graph.entities_of_type(domain))[:3]
    candidates = sorted(graph.entities(), reverse=True)

    # One-time columnar build (the memoised per-epoch cost a serving
    # system pays once, or never after a snapshot attach).
    build_watch = Stopwatch()
    with build_watch.measure("build"):
        topology = graph_topology(graph)
    assert isinstance(topology, GraphTopology)

    # Identity before timing: every arm pair must agree byte for byte.
    identical = all(
        bfs_reachable(graph, probe, max_hops=MAX_HOPS)
        == bfs_reachable_scalar(graph, probe, max_hops=MAX_HOPS)
        for probe in probes
    )
    identical = identical and all(
        connecting_entities(graph, left, right)
        == connecting_entities_scalar(graph, left, right)
        for left, right in pairs
    )
    identical = identical and all(
        expander_on.restrict_candidates(candidates, type_id)
        == expander_off.restrict_candidates(candidates, type_id)
        for type_id in types
    )
    expand_on = expander_on.expand(seeds, domain_type=domain)
    expand_off = expander_off.expand(seeds, domain_type=domain)
    identical = identical and (
        [(e.entity_id, e.score) for e in expand_on.entities]
        == [(e.entity_id, e.score) for e in expand_off.entities]
    )

    watch = Stopwatch()
    for _ in range(repeats):
        with watch.measure("bfs_scalar"):
            for probe in probes:
                bfs_reachable_scalar(graph, probe, max_hops=MAX_HOPS)
        with watch.measure("bfs_topology"):
            for probe in probes:
                bfs_reachable(graph, probe, max_hops=MAX_HOPS)
        with watch.measure("connect_scalar"):
            for left, right in pairs:
                connecting_entities_scalar(graph, left, right)
        with watch.measure("connect_topology"):
            for left, right in pairs:
                connecting_entities(graph, left, right)
        with watch.measure("filter_scalar"):
            for type_id in types:
                expander_off.restrict_candidates(candidates, type_id)
        with watch.measure("filter_topology"):
            for type_id in types:
                expander_on.restrict_candidates(candidates, type_id)
        with watch.measure("expand_scalar"):
            expander_off.expand(seeds, domain_type=domain)
        with watch.measure("expand_topology"):
            expander_on.expand(seeds, domain_type=domain)

    def mean(stage: str) -> float:
        return watch.stats(stage).as_dict()["mean_ms"]

    scalar_ms = mean("bfs_scalar") + mean("connect_scalar") + mean("filter_scalar")
    topology_ms = mean("bfs_topology") + mean("connect_topology") + mean("filter_topology")
    counters = traversal_stats(graph)
    return {
        "entities": graph.num_entities(),
        "edges": graph.num_edges(),
        "repeats": repeats,
        "probes": len(probes),
        "pairs": len(pairs),
        "types": len(types),
        "max_hops": MAX_HOPS,
        "identical": identical,
        "build_ms": build_watch.stats("build").as_dict()["mean_ms"],
        "bfs_scalar_ms": mean("bfs_scalar"),
        "bfs_topology_ms": mean("bfs_topology"),
        "connect_scalar_ms": mean("connect_scalar"),
        "connect_topology_ms": mean("connect_topology"),
        "filter_scalar_ms": mean("filter_scalar"),
        "filter_topology_ms": mean("filter_topology"),
        "expand_scalar_ms": mean("expand_scalar"),
        "expand_topology_ms": mean("expand_topology"),
        "scalar_ms": scalar_ms,
        "topology_ms": topology_ms,
        # > 1.0 = the CSR/interval kernels beat the per-edge Python walks
        # at equal semantics.  Stage-level on purpose (see module docs).
        "topology_ratio": scalar_ms / topology_ms if topology_ms > 0 else float("inf"),
        "expand_ratio": (
            mean("expand_scalar") / mean("expand_topology")
            if mean("expand_topology") > 0
            else float("inf")
        ),
        "traversal": counters.as_dict(),
    }


# --------------------------------------------------------------------- #
# Pytest entry points
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def graphs():
    return {size: _build_graph(size) for size in SIZES}


def test_expansion_topology_vs_scalar_ab(graphs):
    """E10: the traversal A/B — identical results, vectorized wall-clock."""
    rows = []
    for size in SIZES:
        row = measure_expansion_ab(graphs[size], repeats=3)
        assert row["identical"], f"topology/scalar traversal diverged at {size} entities"
        rows.append(
            {
                "entities": row["entities"],
                "build_ms": row["build_ms"],
                "bfs_scalar_ms": row["bfs_scalar_ms"],
                "bfs_topology_ms": row["bfs_topology_ms"],
                "connect_scalar_ms": row["connect_scalar_ms"],
                "connect_topology_ms": row["connect_topology_ms"],
                "filter_scalar_ms": row["filter_scalar_ms"],
                "filter_topology_ms": row["filter_topology_ms"],
                "topology_ratio": row["topology_ratio"],
                "expand_ratio": row["expand_ratio"],
            }
        )
    print_experiment(
        "E10 — traversal: CSR/interval kernels vs scalar per-edge walks "
        f"({PROBE_COUNT} BFS probes, {PAIR_COUNT} connecting pairs, full type sweep)",
        rows,
        notes=(
            "identical results; topology_ratio is stage-level (bfs + connect + "
            "filter), expand_ratio the end-to-end domain-restricted expand()"
        ),
    )
    assert all(row["topology_ratio"] > 0 for row in rows)
    # The interval filter must actually have run both arms at scale.
    largest = measure_expansion_ab(graphs[SIZES[-1]], repeats=1)
    assert largest["traversal"]["interval_filters"] > 0
    assert largest["traversal"]["bfs_queries"] > 0


@pytest.mark.benchmark(group="expansion-latency")
@pytest.mark.parametrize("size", SIZES)
def test_bench_bfs_by_graph_size(benchmark, graphs, size):
    graph = graphs[size]
    probe = _probes(graph, 1)[0]
    graph_topology(graph)  # warm the per-epoch memo outside the timer
    result = benchmark(bfs_reachable, graph, probe, MAX_HOPS)
    assert result[probe] == 0


# --------------------------------------------------------------------- #
# Script entry point (used by the CI bench-smoke job)
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sizes",
        default="200,500,1000,2000",
        help="comma-separated KG sizes (entities) to measure",
    )
    parser.add_argument("--repeats", type=int, default=5, help="repeats per stage")
    parser.add_argument("--output", type=Path, default=None, help="write JSON report here")
    parser.add_argument(
        "--min-topology-ratio",
        type=float,
        default=None,
        help=(
            "fail unless the stage-level scalar/topology wall-clock ratio "
            "reaches this at the largest size (1.0 = the columnar kernels "
            "at-or-faster than the scalar walks; the kernels' per-call "
            "setup only amortises on non-trivial frontiers, so gate "
            "aggressive ratios on at-scale legs, not tiny smoke KGs)"
        ),
    )
    parser.add_argument(
        "--min-expand-ratio",
        type=float,
        default=None,
        help=(
            "fail unless the end-to-end domain-restricted expand() "
            "scalar/topology ratio reaches this at the largest size "
            "(diluted by arm-independent ranking stages — keep modest)"
        ),
    )
    args = parser.parse_args(argv)

    sizes = sorted({int(token) for token in args.sizes.split(",") if token.strip()})
    if not sizes:
        parser.error("--sizes must name at least one KG size")
    rows = []
    for size in sizes:
        row = measure_expansion_ab(_build_graph(size), repeats=args.repeats)
        rows.append(row)
        print(
            f"entities={row['entities']:>6}  build={row['build_ms']:8.3f}ms  "
            f"bfs={row['bfs_scalar_ms']:8.3f}/{row['bfs_topology_ms']:8.3f}ms  "
            f"connect={row['connect_scalar_ms']:8.3f}/{row['connect_topology_ms']:8.3f}ms  "
            f"filter={row['filter_scalar_ms']:8.3f}/{row['filter_topology_ms']:8.3f}ms  "
            f"topology_ratio={row['topology_ratio']:5.2f}  "
            f"expand_ratio={row['expand_ratio']:5.2f}  "
            f"identical={row['identical']}"
        )

    report = {
        "bench": "expansion_latency",
        "description": (
            "graph traversal latency: CSR adjacency + interval-encoded type "
            "filter (graph_topology=True) vs scalar per-edge walks"
        ),
        "config": {
            "sizes": sizes,
            "repeats": args.repeats,
            "probes": PROBE_COUNT,
            "pairs": PAIR_COUNT,
            "max_hops": MAX_HOPS,
            "kg_seed": 42,
            "kg_kwargs": KG_KWARGS,
        },
        "rows": rows,
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if any(not row["identical"] for row in rows):
        print("FAIL: topology traversal diverged from the scalar walks", file=sys.stderr)
        return 1
    largest = rows[-1]
    if args.min_topology_ratio is not None and largest["topology_ratio"] < args.min_topology_ratio:
        print(
            f"FAIL: topology ratio {largest['topology_ratio']:.2f} below required "
            f"{args.min_topology_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_expand_ratio is not None and largest["expand_ratio"] < args.min_expand_ratio:
        print(
            f"FAIL: expand ratio {largest['expand_ratio']:.2f} below required "
            f"{args.min_expand_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
