"""E9: ablation of the semantic-feature ranking model.

DESIGN.md calls out three design choices of the ranking model (§2.3):
discriminability, commonality and type smoothing.  This bench removes each
in turn and re-runs the expansion-quality workload, reporting the MAP drop.
Expected shape: the full model is best; removing discriminability hurts most
(frequent generic features drown specific ones); removing type smoothing
hurts multi-seed queries where some seed misses an edge.
"""

from __future__ import annotations

import pytest

from repro.config import RankingConfig
from repro.datasets import expansion_tasks_from_features, tom_hanks_task
from repro.eval import ExpansionEvaluator, print_experiment
from repro.expansion import EntitySetExpander

ABLATIONS = {
    "full-model": RankingConfig(),
    "no-discriminability": RankingConfig(use_discriminability=False),
    "no-commonality": RankingConfig(use_commonality=False),
    "no-type-smoothing": RankingConfig(type_smoothing=False),
}


@pytest.fixture(scope="module")
def tasks(movie_kg):
    tasks = expansion_tasks_from_features(movie_kg, num_tasks=12, seeds_per_task=2)
    tasks.append(tom_hanks_task(movie_kg))
    return tasks


@pytest.fixture(scope="module")
def ablation_results(movie_kg, tasks):
    results = {}
    for name, config in ABLATIONS.items():
        expander = EntitySetExpander(movie_kg, config=config)
        evaluator = ExpansionEvaluator(movie_kg, expander=expander, top_k=20)

        def method(seeds, top_k, _expander=expander):
            return _expander.expand(seeds, top_k=top_k).entity_ids()

        results[name] = evaluator.evaluate_method(method, tasks, name=name)
    return results


def test_ablation_table(ablation_results):
    """Print the ablation table and check the expected ordering."""
    rows = [
        {
            "variant": name,
            "ap": result.metric("ap"),
            "p@10": result.metric("p@10"),
            "recall@20": result.metric("recall@20"),
        }
        for name, result in ablation_results.items()
    ]
    print_experiment(
        "E9 — ablation of the SF ranking model (movie KG, 13 tasks)",
        rows,
        notes="expected shape: full-model best; dropping either score component hurts",
    )
    full = ablation_results["full-model"].metric("ap")
    assert full >= ablation_results["no-discriminability"].metric("ap") - 1e-9
    assert full >= ablation_results["no-commonality"].metric("ap") - 0.05
    assert full >= ablation_results["no-type-smoothing"].metric("ap") - 0.05
    assert full > 0.1


@pytest.mark.benchmark(group="ranking-ablation")
@pytest.mark.parametrize("variant", list(ABLATIONS))
def test_bench_ablation_variants(benchmark, movie_kg, variant):
    """Latency of one expansion under each ablated configuration."""
    expander = EntitySetExpander(movie_kg, config=ABLATIONS[variant])
    result = benchmark(expander.expand, ("dbr:Forrest_Gump", "dbr:Apollo_13_(film)"), 20)
    assert result.features
