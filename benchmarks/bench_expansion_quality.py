"""E6: entity-set-expansion quality — PivotE's ranking model vs. baselines.

The paper's recommendation engine implements the entity-set-expansion model
of its references [1][6].  This bench compares it against Jaccard,
co-occurrence and personalised-PageRank baselines on concept-recovery tasks
built from the movie and academic KGs, reporting MAP / P@k / NDCG per method
and per seed count.  The expected shape: the semantic-feature model wins or
ties on MAP, with the margin growing for small seed sets where the
error-tolerant smoothing matters most.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    expansion_tasks_from_features,
    seed_count_sweep,
    small_academic_kg,
    tom_hanks_task,
)
from repro.eval import (
    ExpansionEvaluator,
    method_comparison_rows,
    paired_randomization_test,
    print_experiment,
)

METRICS = ("ap", "p@5", "p@10", "recall@20", "ndcg@10")


@pytest.fixture(scope="module")
def movie_tasks(movie_kg):
    tasks = expansion_tasks_from_features(movie_kg, num_tasks=15, seeds_per_task=2)
    tasks.append(tom_hanks_task(movie_kg))
    return tasks


def test_expansion_quality_movie(movie_kg, movie_tasks):
    """Main comparison table on the movie KG."""
    evaluator = ExpansionEvaluator(movie_kg, top_k=20)
    results = evaluator.compare(movie_tasks)
    rows = method_comparison_rows(
        {name: result.metrics for name, result in results.items()}, metrics=METRICS
    )
    print_experiment(
        "E6a — expansion quality on the movie KG (16 tasks, 2 seeds)",
        rows,
        notes="expected shape: pivote >= baselines on MAP (ap)",
    )
    pivote_ap = results["pivote"].metric("ap")
    for baseline in ("jaccard", "co-occurrence", "ppr"):
        assert pivote_ap >= results[baseline].metric("ap") - 0.05

    # Paired significance of the PivotE-vs-baseline AP margins.
    pivote_per_task = [metrics["ap"] for metrics in results["pivote"].per_task]
    significance_rows = []
    for baseline in ("jaccard", "co-occurrence", "ppr"):
        baseline_per_task = [metrics["ap"] for metrics in results[baseline].per_task]
        outcome = paired_randomization_test(pivote_per_task, baseline_per_task, iterations=5000)
        significance_rows.append(
            {
                "comparison": f"pivote vs {baseline}",
                "mean_ap_diff": outcome.mean_difference,
                "p_value": outcome.p_value,
                "significant_at_05": outcome.significant_at_05,
            }
        )
    print_experiment("E6a — paired randomization test on the AP margins", significance_rows)


def test_expansion_quality_academic():
    """Cross-domain check: the same comparison on the academic KG."""
    academic = small_academic_kg()
    tasks = expansion_tasks_from_features(academic, num_tasks=10, seeds_per_task=2)
    evaluator = ExpansionEvaluator(academic, top_k=20)
    results = evaluator.compare(tasks)
    rows = method_comparison_rows(
        {name: result.metrics for name, result in results.items()}, metrics=METRICS
    )
    print_experiment("E6b — expansion quality on the academic KG", rows)
    assert results["pivote"].metric("ap") > 0.05


def test_expansion_quality_by_seed_count(movie_kg):
    """MAP as a function of the number of example entities (1-4 seeds)."""
    base_task = tom_hanks_task(movie_kg)
    evaluator = ExpansionEvaluator(movie_kg, top_k=20)
    methods = evaluator.methods()
    rows = []
    for count, task in sorted(seed_count_sweep(base_task, max_seeds=4).items()):
        row = {"seeds": count}
        for name, method in methods.items():
            result = evaluator.evaluate_method(method, [task], name=name)
            row[name] = result.metric("ap")
        rows.append(row)
    print_experiment(
        "E6c — MAP vs. number of seed entities (Tom Hanks films)",
        rows,
        columns=["seeds", "pivote", "jaccard", "co-occurrence", "ppr"],
    )
    assert rows


@pytest.mark.benchmark(group="expansion-quality")
def test_bench_pivote_expansion(benchmark, movie_kg, movie_tasks, movie_expander):
    """Latency of one PivotE expansion call (2 seeds)."""
    task = movie_tasks[-1]
    result = benchmark(movie_expander.expand, task.seeds, 20)
    assert result.entities


@pytest.mark.benchmark(group="expansion-quality")
def test_bench_baseline_jaccard(benchmark, movie_kg, movie_tasks, movie_expander):
    """Latency of the Jaccard baseline on the same task."""
    from repro.ranking import JaccardRanker

    ranker = JaccardRanker(movie_kg, movie_expander.feature_index)
    task = movie_tasks[-1]
    ranked = benchmark(ranker.rank, task.seeds, 20)
    assert ranked
