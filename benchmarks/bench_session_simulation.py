"""E10 (extension): session-level evaluation with simulated users.

The demo's claim is that the exploration loop ("learn-as-you-go") lets a
user recover a concept through clicks alone.  This extension experiment
quantifies that with the simulated users of :mod:`repro.explore.simulation`:

* a **focused investigator** clicking relevant recommendations recovers the
  target concept within a small click budget (session recall / steps);
* a **random explorer** provides the lower bound and a robustness check
  (random clicking across domains never crashes the session machinery).
"""

from __future__ import annotations

import pytest

from repro.datasets import expansion_tasks_from_features, tom_hanks_task
from repro.eval import print_experiment
from repro.explore import FocusedInvestigator, RandomExplorer, run_investigation_workload


@pytest.fixture(scope="module")
def investigation_tasks(movie_kg):
    tasks = expansion_tasks_from_features(movie_kg, num_tasks=6, seeds_per_task=2, min_concept_size=6)
    tasks.append(tom_hanks_task(movie_kg))
    return [(task.seeds, task.relevant) for task in tasks]


def test_session_recall_table(movie_system, investigation_tasks):
    """Print per-task session recall for the focused investigator."""
    results = run_investigation_workload(movie_system, investigation_tasks, max_steps=8)
    rows = []
    for (seeds, target), result in zip(investigation_tasks, results):
        rows.append(
            {
                "task": result.session_id,
                "target_size": len(target),
                "steps": result.steps,
                "recall": result.recall,
                "steps_to_half_recall": result.steps_to_recall(0.5) or -1,
            }
        )
    print_experiment(
        "E10 — focused-investigator session recall (8-step budget)",
        rows,
        notes="expected shape: most concepts recovered to >= 0.5 recall within the budget",
    )
    mean_recall = sum(result.recall for result in results) / len(results)
    assert mean_recall >= 0.5


def test_random_explorer_robustness(movie_system):
    """The random explorer exercises the whole surface without failures."""
    explorer = RandomExplorer(movie_system, steps=20, pivot_probability=0.3, seed=11)
    result = explorer.run("forrest gump", session_id="e10-random")
    rows = [
        {"metric": "timeline steps", "value": result.steps},
        {"metric": "distinct domains visited", "value": len(result.found)},
        {"metric": "pivots", "value": result.operations.get("pivot", 0)},
        {"metric": "selections", "value": result.operations.get("select-entity", 0)},
    ]
    print_experiment("E10 — random-explorer robustness walk", rows)
    assert result.steps >= 10


@pytest.mark.benchmark(group="session-simulation")
def test_bench_focused_investigation(benchmark, movie_system, movie_kg):
    """Latency of one full focused-investigation session (Tom Hanks concept)."""
    task = tom_hanks_task(movie_kg)

    counter = iter(range(1_000_000))

    def run():
        investigator = FocusedInvestigator(movie_system, task.relevant, max_steps=6)
        return investigator.run(task.seeds, session_id=f"bench-invest-{next(counter)}")

    result = benchmark(run)
    assert result.recall > 0


@pytest.mark.benchmark(group="session-simulation")
def test_bench_random_walk(benchmark, movie_system):
    """Latency of a 10-step random exploration walk."""
    counter = iter(range(1_000_000))

    def run():
        explorer = RandomExplorer(movie_system, steps=10, pivot_probability=0.25, seed=3)
        return explorer.run("tom hanks", session_id=f"bench-random-{next(counter)}")

    result = benchmark(run)
    assert result.steps >= 1
