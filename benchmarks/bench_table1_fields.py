"""E1 (Table 1): the five-field entity representation.

Reproduces Table 1 of the paper — the multi-fielded representation of
``Forrest_Gump`` — and measures how fast fielded documents are built for a
single entity and for the whole collection (the indexing cost of the search
engine).
"""

from __future__ import annotations

import pytest

from repro.eval import print_experiment
from repro.search import build_all_documents, build_entity_document


def test_table1_contents(movie_kg):
    """Print the reproduced Table 1 and check the paper's field contents."""
    document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
    rows = [{"field": field, "content": content} for field, content in document.as_table()]
    print_experiment("E1 / Table 1 — multi-fielded representation of Forrest_Gump", rows)
    table = dict(document.as_table())
    assert table["names"] == "Forrest Gump"
    assert "142 minutes" in table["attributes"]
    assert "American films" in table["categories"]
    assert "Gumpian" in table["similar_entity_names"]
    assert "Tom Hanks" in table["related_entity_names"]


@pytest.mark.benchmark(group="table1-fields")
def test_bench_build_single_document(benchmark, movie_kg):
    """Time to derive the five-field document of one entity."""
    document = benchmark(build_entity_document, movie_kg, "dbr:Forrest_Gump")
    assert document.field_text("names")


@pytest.mark.benchmark(group="table1-fields")
def test_bench_build_all_documents(benchmark, movie_kg):
    """Time to derive fielded documents for the whole collection."""
    documents = benchmark(build_all_documents, movie_kg)
    assert len(documents) == movie_kg.num_entities()
