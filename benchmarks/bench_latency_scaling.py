"""E8: recommendation latency scaling with graph size and seed count.

The demo claims interactive exploration where recommendations are computed
"on the fly".  This bench measures how the recommendation latency grows with
the size of the knowledge graph and with the number of seed entities, using
the configurable random KG generator.  Expected shape: sub-second latency at
laptop scale, roughly linear growth in the number of candidate entities
touched, and mild growth with seed count (the commonality product adds one
p(pi|e) evaluation per seed).
"""

from __future__ import annotations

import pytest

from repro.datasets import RandomKGConfig, build_random_kg
from repro.eval import Stopwatch, print_experiment
from repro.expansion import EntitySetExpander

SIZES = (200, 500, 1000, 2000)


@pytest.fixture(scope="module")
def graphs():
    return {size: build_random_kg(RandomKGConfig(num_entities=size, seed=42)) for size in SIZES}


@pytest.fixture(scope="module")
def expanders(graphs):
    return {size: EntitySetExpander(graph) for size, graph in graphs.items()}


def _seeds(graph, count: int):
    """Pick deterministic seeds from the largest type of a random KG."""
    largest_type = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    members = sorted(graph.entities_of_type(largest_type))
    return members[:count]


def test_latency_vs_graph_size(graphs, expanders):
    """Latency of one expansion (2 seeds) as the graph grows."""
    watch = Stopwatch()
    rows = []
    for size in SIZES:
        graph, expander = graphs[size], expanders[size]
        seeds = _seeds(graph, 2)
        label = f"entities={size}"
        for _ in range(3):
            with watch.measure(label):
                expander.expand(seeds, top_k=20)
        stats = watch.stats(label).as_dict()
        rows.append({"entities": size, "edges": graph.num_edges(), "mean_ms": stats["mean_ms"], "p95_ms": stats["p95_ms"]})
    print_experiment(
        "E8a — recommendation latency vs. KG size (2 seeds, top-20)",
        rows,
        notes="expected shape: roughly linear in graph size, interactive (< 1s) at laptop scale",
    )
    assert rows[-1]["mean_ms"] > 0


def test_latency_vs_seed_count(graphs, expanders):
    """Latency of one expansion as the number of seeds grows (fixed graph)."""
    size = 1000
    graph, expander = graphs[size], expanders[size]
    watch = Stopwatch()
    rows = []
    for count in (1, 2, 4, 8):
        seeds = _seeds(graph, count)
        label = f"seeds={count}"
        for _ in range(3):
            with watch.measure(label):
                expander.expand(seeds, top_k=20)
        stats = watch.stats(label).as_dict()
        rows.append({"seeds": count, "mean_ms": stats["mean_ms"], "p95_ms": stats["p95_ms"]})
    print_experiment("E8b — recommendation latency vs. seed count (1000 entities)", rows)
    assert len(rows) == 4


@pytest.mark.benchmark(group="latency-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_bench_expand_by_graph_size(benchmark, expanders, graphs, size):
    expander = expanders[size]
    seeds = _seeds(graphs[size], 2)
    result = benchmark(expander.expand, seeds, 20)
    assert result.entities


@pytest.mark.benchmark(group="latency-scaling")
@pytest.mark.parametrize("seed_count", (1, 2, 4, 8))
def test_bench_expand_by_seed_count(benchmark, expanders, graphs, seed_count):
    expander = expanders[1000]
    seeds = _seeds(graphs[1000], seed_count)
    result = benchmark(expander.expand, seeds, 20)
    assert result.seeds == tuple(seeds)
