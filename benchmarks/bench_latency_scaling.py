"""E8: latency scaling of recommendation and keyword search.

The demo claims interactive exploration where recommendations are computed
"on the fly".  This bench measures two hot paths as the knowledge graph
grows, using the configurable random KG generator:

Since PR 5 the A/B carries two execution-layer arms as well: ``sharded``
runs the same maxscore traversal fanned out over 4 document shards with
the cross-shard θ broadcast (``repro.exec``), and ``batched`` answers the
workload — duplicated ×2, as real traffic repeats queries — through one
cache-free ``SearchEngine.search_many`` call against the same requests
issued one at a time (``unbatched``).

Since PR 7 the A/B carries a ``parallel`` arm: the same sharded maxscore
traversal with ``executor="process"`` — survivor selection runs in warm
worker processes attached to the shared-memory snapshot of the columnar
index (``repro.exec.shm`` / ``repro.exec.procpool``), with the
cross-process θ slab standing in for the thread-level broadcast.
``parallel_ratio`` is pruned-serial over process wall-clock; it only
exceeds 1.0 on multi-core hosts (``cpu_cores`` is recorded so gates can
stay honest on single-core CI runners).

Since PR 6 the default engine scores through the columnar postings view
and vectorized kernels (``repro.index.columnar`` + ``repro.topk.kernels``);
the ``nocolumnar`` arm runs the identical maxscore traversal through the
scalar per-posting loops (``columnar=False``), so ``columnar_ratio`` is
the vectorization payoff at equal semantics.  The plain ``accumulator``
arm stays scalar too — it is the historical term-at-a-time baseline.

* recommendation latency vs. graph size and seed count (the original E8);
* keyword-search latency in a five-way A/B: the exhaustive
  score-all-then-sort path (``search_exhaustive``), the plain term-at-a-time
  accumulator path (``pruning="off"``), the threshold-pruned max-score path
  (``pruning="maxscore"``, the default since PR 3 — see ``repro.topk``),
  the block-max path (``pruning="blockmax"``: subset-pool θ priming for
  the dense LM driver, per-range bounds + galloping AND-mode refinement
  for the sparse BM25 driver), and the engine-level LRU result cache for
  repeated queries.  A BM25-names maxscore-vs-blockmax sub-A/B over one
  long (25-label) query — the frequent-term refinement workload the
  galloping intersection targets — rides along so the committed baseline
  records the sparse driver's block-skip counters.  The A/B verifies
  that all scoring paths return identical rankings before trusting any
  timing, and reports every pruned path's skip counters.

Run as a script to produce the machine-readable baseline::

    python benchmarks/bench_latency_scaling.py --sizes 200,500 \
        --output BENCH_search_latency.json

which is what the CI bench-smoke job does on the tiny (200-entity)
dataset; the committed ``BENCH_search_latency.json`` at the repo root is
the perf trajectory baseline for future PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.config import SearchConfig  # noqa: E402
from repro.datasets import RandomKGConfig, build_random_kg  # noqa: E402
from repro.eval import Stopwatch, print_experiment  # noqa: E402
from repro.expansion import EntitySetExpander  # noqa: E402
from repro.search import (  # noqa: E402
    BM25FieldScorer,
    MixtureLanguageModelScorer,
    SearchEngine,
    parse_query,
)

SIZES = (200, 500, 1000, 2000)

#: Document shards of the sharded A/B arm (see ``repro.exec``): the
#: committed baseline records the 4-shard fan-out against the 1-shard
#: serial path on the same workload.
SHARD_COUNT = 4

#: Worker processes of the ``parallel`` arm: capped by the shard count
#: (one worker per dispatched shard is the useful maximum) but at least
#: two so the pool actually fans out even on small CI runners.
PROCESS_WORKERS = min(SHARD_COUNT, max(2, os.cpu_count() or 1))


def _search_queries(graph, num_queries: int = 8) -> list[str]:
    """Deterministic multi-term keyword queries from entity labels.

    Every label of the random KG shares the token "entity", so each query
    drags the longest posting list in the index through scoring — the
    worst case for the score-all pattern.  Half the queries combine two
    labels (4 tokens) so the mix covers the multi-term queries users
    actually type, where term-at-a-time pruning has terms to skip.
    """
    entities = sorted(graph.entities())
    step = max(1, len(entities) // num_queries)
    queries: list[str] = []
    singles = [graph.label(entities[index]) for index in range(0, len(entities), step)]
    for position, label in enumerate(singles):
        if len(queries) >= num_queries:
            break
        if position % 2 == 0:
            queries.append(label)
        else:
            partner = singles[(position + num_queries // 2) % len(singles)]
            queries.append(f"{label} {partner}")
    return queries


def _results_signature(results) -> list:
    return [(result.doc_id, result.score) for result in results]


def measure_search_ab(
    graph,
    repeats: int = 5,
    num_queries: int = 8,
    top_k: int = 20,
) -> dict[str, object]:
    """Pruned-vs-accumulator-vs-exhaustive (and cached) search latency.

    Returns a row with mean/p95 latencies per mode, the speedup factors,
    the pruned path's skip counters and an ``identical`` flag confirming
    every scoring path ranked identically.
    """
    engine = SearchEngine.from_graph(graph)  # pruning="maxscore", columnar by default
    pruned = engine.mlm_scorer
    #: The accumulator baseline stays fully scalar (pruning and columnar
    #: both off) — it is the historical term-at-a-time reference point.
    plain = MixtureLanguageModelScorer(
        engine.index, SearchConfig(pruning="off", columnar=False)
    )
    blockmax = MixtureLanguageModelScorer(engine.index, SearchConfig(pruning="blockmax"))
    #: The columnar A/B: the same maxscore traversal through the scalar
    #: per-posting loops.  pruned/nocolumnar is the vectorization payoff.
    nocolumnar = MixtureLanguageModelScorer(
        engine.index, SearchConfig(pruning="maxscore", columnar=False)
    )
    #: The sharded arm: the same maxscore traversal fanned out over
    #: SHARD_COUNT document shards with the cross-shard θ broadcast, on a
    #: properly sharded index (routing maps maintained at indexing time —
    #: the production configuration, not the CRC-per-candidate fallback).
    sharded_engine = SearchEngine.from_graph(graph, SearchConfig(shards=SHARD_COUNT))
    sharded = sharded_engine.mlm_scorer
    #: The parallel arm (PR 7): the same sharded traversal with worker
    #: *processes* attached to the shared-memory snapshot; byte-identical
    #: rankings, real core parallelism where the host has the cores.
    parallel_engine = SearchEngine.from_graph(
        graph,
        SearchConfig(shards=SHARD_COUNT, executor="process", workers=PROCESS_WORKERS),
    )
    parallel = parallel_engine.mlm_scorer
    #: The batch arm runs cache-free so it measures search_many's
    #: amortisation (shared snapshot + in-batch dedupe), not LRU hits.
    batch_engine = SearchEngine.from_graph(graph, SearchConfig(result_cache_size=0))
    bm25_maxscore = engine.bm25_names_scorer()
    bm25_blockmax = BM25FieldScorer(engine.index, "names", pruning="blockmax")
    queries = _search_queries(graph, num_queries)
    parsed = [parse_query(raw) for raw in queries]
    #: Real traffic repeats queries; the batch input carries each query
    #: twice so the in-batch dedupe has duplicates to amortise.
    batch_input = queries + queries
    # The BM25 sub-A/B runs one long multi-label query with the first
    # five labels repeated: enough rare terms fill the θ heap before the
    # ubiquitous "entity" token, the repeats double those labels' query
    # contributions so θ actually evicts the single-match tail, and the
    # "entity" postings walk is then served by the (galloping,
    # block-skipping) AND-mode refinement over the few survivors.
    entities = sorted(graph.entities())
    labels = [graph.label(e) for e in entities[:25]]
    long_query = parse_query(" ".join(labels + labels[:5]))
    bm25_top_k = 5
    watch = Stopwatch()
    identical = True
    bm25_slow = _results_signature(bm25_maxscore.search_exhaustive(long_query, top_k=bm25_top_k))
    if _results_signature(bm25_maxscore.search(long_query, top_k=bm25_top_k)) != bm25_slow:
        identical = False
    if _results_signature(bm25_blockmax.search(long_query, top_k=bm25_top_k)) != bm25_slow:
        identical = False
    for raw, query in zip(queries, parsed):
        slow = _results_signature(pruned.search_exhaustive(query, top_k=top_k))
        if _results_signature(pruned.search(query, top_k=top_k)) != slow:
            identical = False
        if _results_signature(plain.search(query, top_k=top_k)) != slow:
            identical = False
        if _results_signature(blockmax.search(query, top_k=top_k)) != slow:
            identical = False
        if _results_signature(nocolumnar.search(query, top_k=top_k)) != slow:
            identical = False
        if _results_signature(sharded.search(query, top_k=top_k)) != slow:
            identical = False
        if _results_signature(parallel.search(query, top_k=top_k)) != slow:
            identical = False
        engine.search(raw, top_k=top_k)  # warm the LRU so "cached" times hits only
    batched_hits = batch_engine.search_many(batch_input, top_k=top_k)
    serial_hits = [batch_engine.search(raw, top_k=top_k) for raw in batch_input]
    if [[hit.as_dict() for hit in hits] for hits in batched_hits] != [
        [hit.as_dict() for hit in hits] for hits in serial_hits
    ]:
        identical = False
    for _ in range(repeats):
        for raw, query in zip(queries, parsed):
            with watch.measure("exhaustive"):
                pruned.search_exhaustive(query, top_k=top_k)
            with watch.measure("accumulator"):
                plain.search(query, top_k=top_k)
            with watch.measure("pruned"):
                pruned.search(query, top_k=top_k)
            with watch.measure("blockmax"):
                blockmax.search(query, top_k=top_k)
            with watch.measure("nocolumnar"):
                nocolumnar.search(query, top_k=top_k)
            with watch.measure("sharded"):
                sharded.search(query, top_k=top_k)
            with watch.measure("parallel"):
                parallel.search(query, top_k=top_k)
            with watch.measure("bm25_maxscore"):
                bm25_maxscore.search(long_query, top_k=bm25_top_k)
            with watch.measure("bm25_blockmax"):
                bm25_blockmax.search(long_query, top_k=bm25_top_k)
            with watch.measure("cached"):
                engine.search(raw, top_k=top_k)
        # The batch arm answers the duplicated workload in one call; the
        # unbatched arm issues the same requests one at a time on the
        # same cache-free engine.
        with watch.measure("batched"):
            batch_engine.search_many(batch_input, top_k=top_k)
        with watch.measure("unbatched"):
            for raw in batch_input:
                batch_engine.search(raw, top_k=top_k)
    exhaustive = watch.stats("exhaustive").as_dict()
    accumulator = watch.stats("accumulator").as_dict()
    pruned_stats = watch.stats("pruned").as_dict()
    blockmax_stats = watch.stats("blockmax").as_dict()
    nocolumnar_stats = watch.stats("nocolumnar").as_dict()
    sharded_stats = watch.stats("sharded").as_dict()
    parallel_stats = watch.stats("parallel").as_dict()
    executor_record = parallel_engine.stats().executor
    parallel_engine.close()  # unlink the published snapshot segment
    bm25_maxscore_stats = watch.stats("bm25_maxscore").as_dict()
    bm25_blockmax_stats = watch.stats("bm25_blockmax").as_dict()
    cached = watch.stats("cached").as_dict()
    batched = watch.stats("batched").as_dict()
    unbatched = watch.stats("unbatched").as_dict()

    def _speedup(mean_ms: float) -> float:
        return exhaustive["mean_ms"] / mean_ms if mean_ms > 0 else float("inf")

    return {
        "entities": graph.num_entities(),
        "edges": graph.num_edges(),
        "queries": len(queries),
        "repeats": repeats,
        "top_k": top_k,
        "identical": identical,
        "exhaustive_mean_ms": exhaustive["mean_ms"],
        "exhaustive_p95_ms": exhaustive["p95_ms"],
        "accumulator_mean_ms": accumulator["mean_ms"],
        "accumulator_p95_ms": accumulator["p95_ms"],
        "pruned_mean_ms": pruned_stats["mean_ms"],
        "pruned_p95_ms": pruned_stats["p95_ms"],
        "blockmax_mean_ms": blockmax_stats["mean_ms"],
        "blockmax_p95_ms": blockmax_stats["p95_ms"],
        "nocolumnar_mean_ms": nocolumnar_stats["mean_ms"],
        "nocolumnar_p95_ms": nocolumnar_stats["p95_ms"],
        "sharded_mean_ms": sharded_stats["mean_ms"],
        "sharded_p95_ms": sharded_stats["p95_ms"],
        "shards": SHARD_COUNT,
        "parallel_mean_ms": parallel_stats["mean_ms"],
        "parallel_p95_ms": parallel_stats["p95_ms"],
        "workers": PROCESS_WORKERS,
        "cpu_cores": os.cpu_count() or 1,
        "bm25_maxscore_mean_ms": bm25_maxscore_stats["mean_ms"],
        "bm25_blockmax_mean_ms": bm25_blockmax_stats["mean_ms"],
        "cached_mean_ms": cached["mean_ms"],
        "cached_p95_ms": cached["p95_ms"],
        # Per-query means of the ×2-duplicated batch workload.
        "batched_mean_ms": batched["mean_ms"] / len(batch_input),
        "unbatched_mean_ms": unbatched["mean_ms"] / len(batch_input),
        "speedup_accumulator": _speedup(accumulator["mean_ms"]),
        "speedup_pruned": _speedup(pruned_stats["mean_ms"]),
        "speedup_blockmax": _speedup(blockmax_stats["mean_ms"]),
        "speedup_nocolumnar": _speedup(nocolumnar_stats["mean_ms"]),
        "speedup_sharded": _speedup(sharded_stats["mean_ms"]),
        "speedup_cached": _speedup(cached["mean_ms"]),
        # > 1.0 = the columnar kernels beat the scalar loops at equal
        # semantics (both arms are the serial maxscore traversal).
        "columnar_ratio": (
            nocolumnar_stats["mean_ms"] / pruned_stats["mean_ms"]
            if pruned_stats["mean_ms"] > 0
            else float("inf")
        ),
        # 1.0 = the 4-shard arm at 1-shard wall-clock; > 1.0 = ahead.
        "sharded_ratio": (
            pruned_stats["mean_ms"] / sharded_stats["mean_ms"]
            if sharded_stats["mean_ms"] > 0
            else float("inf")
        ),
        # Serial maxscore over the process arm: > 1.0 = real core
        # parallelism paid off (only expected on multi-core hosts).
        "parallel_ratio": (
            pruned_stats["mean_ms"] / parallel_stats["mean_ms"]
            if parallel_stats["mean_ms"] > 0
            else float("inf")
        ),
        "executor_parallel": None if executor_record is None else executor_record.as_dict(),
        # > 1.0 = one search_many call beats the same requests one-by-one.
        "batch_ratio": (
            unbatched["mean_ms"] / batched["mean_ms"]
            if batched["mean_ms"] > 0
            else float("inf")
        ),
        "pruning": pruned.pruning_info(),
        "pruning_blockmax": blockmax.pruning_info(),
        "pruning_sharded": sharded.pruning_info(),
        "pruning_bm25_blockmax": bm25_blockmax.pruning_info(),
    }


# --------------------------------------------------------------------- #
# Pytest entry points
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def graphs():
    return {size: build_random_kg(RandomKGConfig(num_entities=size, seed=42)) for size in SIZES}


@pytest.fixture(scope="module")
def expanders(graphs):
    return {size: EntitySetExpander(graph) for size, graph in graphs.items()}


def _seeds(graph, count: int):
    """Pick deterministic seeds from the largest type of a random KG."""
    largest_type = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    members = sorted(graph.entities_of_type(largest_type))
    return members[:count]


def test_latency_vs_graph_size(graphs, expanders):
    """Latency of one expansion (2 seeds) as the graph grows."""
    watch = Stopwatch()
    rows = []
    for size in SIZES:
        graph, expander = graphs[size], expanders[size]
        seeds = _seeds(graph, 2)
        label = f"entities={size}"
        for _ in range(3):
            with watch.measure(label):
                expander.expand(seeds, top_k=20)
        stats = watch.stats(label).as_dict()
        rows.append({"entities": size, "edges": graph.num_edges(), "mean_ms": stats["mean_ms"], "p95_ms": stats["p95_ms"]})
    print_experiment(
        "E8a — recommendation latency vs. KG size (2 seeds, top-20)",
        rows,
        notes="expected shape: roughly linear in graph size, interactive (< 1s) at laptop scale",
    )
    assert rows[-1]["mean_ms"] > 0


def test_latency_vs_seed_count(graphs, expanders):
    """Latency of one expansion as the number of seeds grows (fixed graph)."""
    size = 1000
    graph, expander = graphs[size], expanders[size]
    watch = Stopwatch()
    rows = []
    for count in (1, 2, 4, 8):
        seeds = _seeds(graph, count)
        label = f"seeds={count}"
        for _ in range(3):
            with watch.measure(label):
                expander.expand(seeds, top_k=20)
        stats = watch.stats(label).as_dict()
        rows.append({"seeds": count, "mean_ms": stats["mean_ms"], "p95_ms": stats["p95_ms"]})
    print_experiment("E8b — recommendation latency vs. seed count (1000 entities)", rows)
    assert len(rows) == 4


def test_search_accumulator_vs_exhaustive_ab(graphs):
    """E8c: the scoring-path A/B — identical rankings, lower latency."""
    rows = []
    for size in SIZES:
        row = measure_search_ab(graphs[size], repeats=3)
        assert row["identical"], f"pruned/accumulator ranking diverged at {size} entities"
        rows.append(
            {
                "entities": row["entities"],
                "exhaustive_ms": row["exhaustive_mean_ms"],
                "accumulator_ms": row["accumulator_mean_ms"],
                "pruned_ms": row["pruned_mean_ms"],
                "blockmax_ms": row["blockmax_mean_ms"],
                "nocolumnar_ms": row["nocolumnar_mean_ms"],
                "sharded_ms": row["sharded_mean_ms"],
                "parallel_ms": row["parallel_mean_ms"],
                "batched_ms": row["batched_mean_ms"],
                "cached_ms": row["cached_mean_ms"],
                "speedup": row["speedup_accumulator"],
                "speedup_pruned": row["speedup_pruned"],
                "speedup_blockmax": row["speedup_blockmax"],
                "columnar_ratio": row["columnar_ratio"],
                "sharded_ratio": row["sharded_ratio"],
                "parallel_ratio": row["parallel_ratio"],
                "batch_ratio": row["batch_ratio"],
                "speedup_cached": row["speedup_cached"],
            }
        )
    print_experiment(
        "E8c — keyword search: sharded/batched vs. blockmax vs. maxscore vs. "
        "accumulator vs. exhaustive",
        rows,
        notes=(
            "identical rankings; pruned is the maxscore path, sharded the 4-shard "
            "fan-out, batched one search_many call, cached the LRU hit path"
        ),
    )
    assert all(row["pruned_ms"] > 0 for row in rows)
    largest = measure_search_ab(graphs[SIZES[-1]], repeats=1)
    assert largest["pruning"]["candidates_pruned"] > 0  # θ actually bites at scale
    # Every shard worker's θ must actually evict (per-shard skip counters).
    assert largest["pruning_sharded"]["candidates_pruned"] > 0
    assert largest["pruning_sharded"]["queries"] == largest["pruning"]["queries"]
    # The sparse blockmax driver must actually skip posting blocks.
    assert largest["pruning_bm25_blockmax"]["blocks_skipped"] > 0


@pytest.mark.benchmark(group="latency-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_bench_expand_by_graph_size(benchmark, expanders, graphs, size):
    expander = expanders[size]
    seeds = _seeds(graphs[size], 2)
    result = benchmark(expander.expand, seeds, 20)
    assert result.entities


@pytest.mark.benchmark(group="latency-scaling")
@pytest.mark.parametrize("seed_count", (1, 2, 4, 8))
def test_bench_expand_by_seed_count(benchmark, expanders, graphs, seed_count):
    expander = expanders[1000]
    seeds = _seeds(graphs[1000], seed_count)
    result = benchmark(expander.expand, seeds, 20)
    assert result.seeds == tuple(seeds)


# --------------------------------------------------------------------- #
# Script entry point (used by the CI bench-smoke job)
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sizes",
        default="200,500,1000,2000",
        help="comma-separated KG sizes (entities) to measure",
    )
    parser.add_argument("--queries", type=int, default=8, help="queries per size")
    parser.add_argument("--repeats", type=int, default=5, help="repeats per query per mode")
    parser.add_argument("--top-k", type=int, default=20, help="results per query")
    parser.add_argument("--output", type=Path, default=None, help="write JSON report here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the largest size reaches this accumulator speedup",
    )
    parser.add_argument(
        "--min-pruned-ratio",
        type=float,
        default=None,
        help=(
            "fail unless accumulator_mean_ms over each pruned arm's mean "
            "(maxscore and blockmax) reaches this at the largest size "
            "(1.0 = pruned at-or-faster than plain accumulator)"
        ),
    )
    parser.add_argument(
        "--min-sharded-ratio",
        type=float,
        default=None,
        help=(
            "fail unless pruned_mean_ms over the 4-shard arm's mean reaches "
            "this at the largest size (1.0 = sharded at-or-faster than the "
            "1-shard serial path; sub-1.0 values tolerate fan-out overhead "
            "at smoke-test sizes)"
        ),
    )
    parser.add_argument(
        "--min-parallel-ratio",
        type=float,
        default=None,
        help=(
            "fail unless pruned_mean_ms over the process-executor arm's "
            "mean reaches this at the largest size (1.0 = process "
            "fan-out at-or-faster than the 1-shard serial path); the "
            "gate is skipped with a warning on single-core hosts, where "
            "worker processes cannot overlap"
        ),
    )
    parser.add_argument(
        "--min-columnar-ratio",
        type=float,
        default=None,
        help=(
            "fail unless nocolumnar_mean_ms over the columnar maxscore arm's "
            "mean reaches this at the largest size (1.0 = the vectorized "
            "kernels at-or-faster than the scalar per-posting loops)"
        ),
    )
    parser.add_argument(
        "--min-batch-ratio",
        type=float,
        default=None,
        help=(
            "fail unless the unbatched/batched wall-clock ratio of the "
            "duplicated workload reaches this at the largest size "
            "(1.0 = one search_many call at-or-faster than a query loop)"
        ),
    )
    args = parser.parse_args(argv)

    sizes = sorted({int(token) for token in args.sizes.split(",") if token.strip()})
    if not sizes:
        parser.error("--sizes must name at least one KG size")
    rows = []
    for size in sizes:
        graph = build_random_kg(RandomKGConfig(num_entities=size, seed=42))
        row = measure_search_ab(
            graph, repeats=args.repeats, num_queries=args.queries, top_k=args.top_k
        )
        rows.append(row)
        print(
            f"entities={row['entities']:>6}  exhaustive={row['exhaustive_mean_ms']:8.3f}ms  "
            f"accumulator={row['accumulator_mean_ms']:8.3f}ms  pruned={row['pruned_mean_ms']:8.3f}ms  "
            f"blockmax={row['blockmax_mean_ms']:8.3f}ms  nocolumnar={row['nocolumnar_mean_ms']:8.3f}ms  "
            f"sharded={row['sharded_mean_ms']:8.3f}ms  "
            f"parallel={row['parallel_mean_ms']:8.3f}ms  "
            f"batched={row['batched_mean_ms']:8.3f}ms  cached={row['cached_mean_ms']:8.3f}ms  "
            f"speedup={row['speedup_accumulator']:6.2f}x  pruned={row['speedup_pruned']:6.2f}x  "
            f"blockmax={row['speedup_blockmax']:6.2f}x  columnar_ratio={row['columnar_ratio']:5.2f}  "
            f"shard_ratio={row['sharded_ratio']:5.2f}  "
            f"parallel_ratio={row['parallel_ratio']:5.2f}  "
            f"batch_ratio={row['batch_ratio']:5.2f}  cached={row['speedup_cached']:8.2f}x  "
            f"identical={row['identical']}"
        )

    report = {
        "bench": "search_latency_scaling",
        "description": (
            "keyword search latency: blockmax vs maxscore-pruned vs accumulator "
            "vs exhaustive vs LRU-cached (plus a BM25-names blockmax sub-A/B "
            "and a columnar-vs-scalar maxscore A/B)"
        ),
        "config": {
            "sizes": sizes,
            "queries": args.queries,
            "repeats": args.repeats,
            "top_k": args.top_k,
            "kg_seed": 42,
        },
        "rows": rows,
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if any(not row["identical"] for row in rows):
        print("FAIL: pruned/accumulator rankings diverged from exhaustive scoring", file=sys.stderr)
        return 1
    largest = rows[-1]
    if args.min_speedup is not None and largest["speedup_accumulator"] < args.min_speedup:
        print(
            f"FAIL: speedup {largest['speedup_accumulator']:.2f}x below "
            f"required {args.min_speedup:.2f}x at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_pruned_ratio is not None:
        for arm in ("pruned", "blockmax"):
            mean_ms = largest[f"{arm}_mean_ms"]
            ratio = largest["accumulator_mean_ms"] / mean_ms if mean_ms > 0 else float("inf")
            if ratio < args.min_pruned_ratio:
                print(
                    f"FAIL: {arm}/accumulator ratio {ratio:.2f} below required "
                    f"{args.min_pruned_ratio:.2f} at {largest['entities']} entities",
                    file=sys.stderr,
                )
                return 1
    if args.min_sharded_ratio is not None and largest["sharded_ratio"] < args.min_sharded_ratio:
        print(
            f"FAIL: sharded ratio {largest['sharded_ratio']:.2f} below required "
            f"{args.min_sharded_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_parallel_ratio is not None:
        if largest["cpu_cores"] <= 1:
            print(
                f"WARN: skipping --min-parallel-ratio {args.min_parallel_ratio:.2f} gate "
                f"on a single-core host (parallel_ratio={largest['parallel_ratio']:.2f})",
                file=sys.stderr,
            )
        elif largest["parallel_ratio"] < args.min_parallel_ratio:
            print(
                f"FAIL: parallel ratio {largest['parallel_ratio']:.2f} below required "
                f"{args.min_parallel_ratio:.2f} at {largest['entities']} entities "
                f"({largest['cpu_cores']} cores)",
                file=sys.stderr,
            )
            return 1
    if args.min_columnar_ratio is not None and largest["columnar_ratio"] < args.min_columnar_ratio:
        print(
            f"FAIL: columnar ratio {largest['columnar_ratio']:.2f} below required "
            f"{args.min_columnar_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_batch_ratio is not None and largest["batch_ratio"] < args.min_batch_ratio:
        print(
            f"FAIL: batch ratio {largest['batch_ratio']:.2f} below required "
            f"{args.min_batch_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
