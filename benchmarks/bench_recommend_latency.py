"""E9: latency of the §2.3 recommendation pipeline, accumulator vs seed path.

PR 2 rebuilt the two-stage recommendation model around the type-grouped
accumulator decomposition of ``p(pi | e)`` (``repro/ranking/ranking_support.py``)
with an epoch-keyed LRU recommendation cache on top.  This bench measures
``RecommendationEngine.recommend_for_seeds`` — feature ranking, entity
ranking and correlation-matrix assembly — in a three-way A/B as the random
KG grows:

* ``exhaustive``  — the seed scoring path (``rank_exhaustive()`` on both
  rankers, cell-by-cell matrix assembly);
* ``accumulator`` — the fast path with ``pruning="off"`` and the
  recommendation cache disabled;
* ``pruned``      — the fast path with threshold pruning
  (``pruning="maxscore"``, the default since PR 3: whole dominant-type
  groups are skipped once their base score plus correction bound cannot
  reach the live θ — see ``repro.topk``), cache disabled;
* ``blockmax``    — threshold pruning with per-type *chunked* correction
  bounds (``pruning="blockmax"``): groups are killed or retired at every
  feature-chunk boundary mid-walk, cache disabled;
* ``cached``      — the fast path served from a warm LRU cache.

Since PR 5 the A/B carries two execution-layer arms as well (see
``repro.exec``): ``sharded`` fans the maxscore entity accumulator out
over 4 entity shards with the cross-shard θ broadcast, and ``batched``
answers a ×2-duplicated batch of seed sets through one cache-free
``recommend_many`` call against the same requests issued one at a time
(``unbatched`` — the in-batch canonical-key dedupe is the amortisation).

Since PR 8 the ranker's default arms score through the columnar feature
tables and the ``columnar_rank`` kernel (``repro.features.columnar`` +
``repro.topk.kernels``); the ``nocolumnar`` arm runs the identical
maxscore walk through the scalar per-holder loops (``columnar=False``).
Entity scoring is a minority of the end-to-end pipeline (feature ranking
and matrix assembly dominate and are arm-independent), so the end-to-end
nocolumnar numbers sit near parity by Amdahl's law; ``columnar_ratio``
therefore measures the *ranking stage itself* — the scalar
``score_entities_pruned`` walk over the ``score_entities_pruned_columnar``
kernel on the same candidates and scored features.  The kernel's setup
cost (ordinal resolution, input assembly) only amortises on large
candidate pools, so the ratio is expected below 1.0 on tiny smoke KGs
and above it at scale.
The ``parallel`` arm — the sharded configuration with
``executor="process"`` — now genuinely fans out: workers attach the
shared-memory feature-table snapshot (``repro.exec.shm``), rebuild the
per-query kernel inputs zero-copy and run ``columnar_rank`` remotely
with the cross-process θ slab.  ``parallel_ratio`` is pruned-serial
over process wall-clock; it only exceeds 1.0 on multi-core hosts
(``cpu_cores`` is recorded so gates can stay honest on single-core CI
runners).

The A/B verifies that both scoring paths return identical entity and
feature rankings (and bitwise-identical matrices) before trusting any
timing.  Run as a script to produce the machine-readable baseline::

    python benchmarks/bench_recommend_latency.py --sizes 200,2000 \
        --output BENCH_recommend_latency.json

which is what the CI bench-smoke job does on the tiny (200-entity)
dataset; the committed ``BENCH_recommend_latency.json`` at the repo root
is the perf trajectory baseline for future PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.config import RankingConfig  # noqa: E402
from repro.datasets import RandomKGConfig, build_random_kg  # noqa: E402
from repro.eval import Stopwatch, print_experiment  # noqa: E402
from repro.explore import RecommendationEngine  # noqa: E402
from repro.features import SemanticFeatureIndex  # noqa: E402
from repro.topk import PruningStats  # noqa: E402

SIZES = (200, 500, 1000, 2000)

#: Entity shards of the sharded A/B arm (see ``repro.exec``).
SHARD_COUNT = 4

#: Worker processes of the ``parallel`` arm: capped by the shard count
#: (one worker per dispatched shard is the useful maximum) but at least
#: two so the pool actually fans out even on small CI runners.
PROCESS_WORKERS = min(SHARD_COUNT, max(2, os.cpu_count() or 1))

#: Hub-anchored random KGs: the Zipf target skew concentrates incoming
#: edges on a few anchors per type (shared stars, genres, venues), which is
#: the structure the recommendation workload of §2.3 actually exercises —
#: large ``E(pi)`` holder lists and candidate pools of hundreds of entities.
KG_KWARGS = {"target_skew": 1.5, "avg_out_degree": 8.0}


def _build_graph(size: int):
    return build_random_kg(RandomKGConfig(num_entities=size, seed=42, **KG_KWARGS))


def _seeds(graph, index: SemanticFeatureIndex, count: int) -> list[str]:
    """Deterministic seeds: holders of the feature with the largest E(pi).

    Entities sharing a popular anchor (the paper's "films starring Tom
    Hanks") produce the dense candidate pools the two-stage model is
    designed for.
    """
    largest = max(index.all_features(), key=lambda f: (len(index.holders_of(f)), f.notation()))
    return sorted(index.holders_of(largest))[:count]


def _identical(fast, slow) -> bool:
    """Same entity ranking, feature ranking and correlation matrix."""
    return (
        fast.entity_ids() == slow.entity_ids()
        and [e.score for e in fast.entities] == [e.score for e in slow.entities]
        and fast.feature_notations() == slow.feature_notations()
        and [f.score for f in fast.features] == [f.score for f in slow.features]
        and np.array_equal(fast.correlations.values, slow.correlations.values)
    )


def _walk_stage_ab(
    engine: RecommendationEngine,
    seeds: list[str],
    top_entities: int,
    repeats: int,
) -> tuple[dict[str, float], dict[str, float]]:
    """Ranking-stage A/B: scalar per-holder walk vs the columnar kernel.

    Both arms run on the same engine, candidates and scored features —
    only the accumulator implementation differs — so the ratio isolates
    the PR 8 kernel from the arm-independent pipeline stages (feature
    ranking, candidate generation, matrix assembly) that dominate
    ``recommend_for_seeds`` wall-clock.
    """
    ranker = engine.expander.entity_ranker
    support = ranker.feature_ranker.probability_model.support()
    scored_features = ranker.feature_ranker.rank(seeds)
    candidates = ranker.candidates(seeds, scored_features)
    stats = PruningStats()
    # Warm both arms once: builds the columnar tables and primes the
    # per-query memos so neither arm pays one-time costs in the loop.
    support.score_entities_pruned(candidates, scored_features, top_entities, stats)
    support.score_entities_pruned_columnar(candidates, scored_features, top_entities, stats)

    watch = Stopwatch()
    for _ in range(max(repeats * 20, 40)):  # the stage is sub-millisecond
        with watch.measure("walk_scalar"):
            support.score_entities_pruned(candidates, scored_features, top_entities, stats)
        with watch.measure("walk_columnar"):
            support.score_entities_pruned_columnar(
                candidates, scored_features, top_entities, stats
            )
    return (
        watch.stats("walk_scalar").as_dict(),
        watch.stats("walk_columnar").as_dict(),
    )


def measure_recommend_ab(
    graph,
    repeats: int = 5,
    seed_count: int = 4,
    top_entities: int = 20,
) -> dict[str, object]:
    """Accumulator-vs-exhaustive (and cached) recommendation latency.

    Returns a row with mean/p95 latencies per mode, the speedup factors and
    an ``identical`` flag confirming both pipelines ranked identically.
    """
    index = SemanticFeatureIndex.build(graph)
    cached_engine = RecommendationEngine(graph, feature_index=index)
    plain_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, pruning="off"),
    )
    pruned_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, pruning="maxscore"),
    )
    blockmax_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, pruning="blockmax"),
    )
    #: The columnar A/B: the same maxscore walk through the scalar
    #: per-holder loops.  pruned/nocolumnar is the vectorization payoff.
    nocolumnar_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, pruning="maxscore", columnar=False),
    )
    #: The sharded arm: the maxscore entity accumulator fanned out over
    #: SHARD_COUNT entity shards with the cross-shard θ broadcast.
    sharded_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, shards=SHARD_COUNT),
    )
    #: The parallel arm (PR 8): the same sharded fan-out with worker
    #: *processes* attached to the shared-memory feature-table snapshot,
    #: running ``columnar_rank`` remotely — byte-identical rankings,
    #: real core parallelism where the host has the cores.
    parallel_engine = RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(
            recommendation_cache_size=0,
            shards=SHARD_COUNT,
            executor="process",
            workers=PROCESS_WORKERS,
        ),
    )
    seeds = _seeds(graph, index, seed_count)
    #: Batch workload: three overlapping seed sets, each submitted twice
    #: (real exploration sessions revisit query states), answered by one
    #: cache-free recommend_many call vs the same requests one at a time.
    seed_pool = _seeds(graph, index, seed_count + 2)
    batch_inputs = [seeds, seed_pool[1 : seed_count + 1], seed_pool[2 : seed_count + 2]]
    batch_inputs = batch_inputs + batch_inputs

    fast = plain_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    slow = plain_engine.recommend_for_seeds(seeds, top_entities=top_entities, exhaustive=True)
    pruned_result = pruned_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    blockmax_result = blockmax_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    nocolumnar_result = nocolumnar_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    sharded_result = sharded_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    parallel_result = parallel_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    batched_results = pruned_engine.recommend_many(batch_inputs, top_entities=top_entities)
    identical = (
        _identical(fast, slow)
        and _identical(pruned_result, slow)
        and _identical(blockmax_result, slow)
        and _identical(nocolumnar_result, slow)
        and _identical(sharded_result, slow)
        and _identical(parallel_result, slow)
        and all(
            _identical(
                payload,
                pruned_engine.recommend_for_seeds(batch_seeds, top_entities=top_entities),
            )
            for payload, batch_seeds in zip(batched_results, batch_inputs)
        )
    )
    cached_engine.recommend_for_seeds(seeds, top_entities=top_entities)  # warm the LRU
    walk_scalar, walk_columnar = _walk_stage_ab(pruned_engine, seeds, top_entities, repeats)

    watch = Stopwatch()
    for _ in range(repeats):
        with watch.measure("exhaustive"):
            plain_engine.recommend_for_seeds(seeds, top_entities=top_entities, exhaustive=True)
        with watch.measure("accumulator"):
            plain_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("pruned"):
            pruned_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("blockmax"):
            blockmax_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("nocolumnar"):
            nocolumnar_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("sharded"):
            sharded_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("parallel"):
            parallel_engine.recommend_for_seeds(seeds, top_entities=top_entities)
        with watch.measure("batched"):
            pruned_engine.recommend_many(batch_inputs, top_entities=top_entities)
        with watch.measure("unbatched"):
            for batch_seeds in batch_inputs:
                pruned_engine.recommend_for_seeds(batch_seeds, top_entities=top_entities)
        with watch.measure("cached"):
            cached_engine.recommend_for_seeds(seeds, top_entities=top_entities)
    exhaustive = watch.stats("exhaustive").as_dict()
    accumulator = watch.stats("accumulator").as_dict()
    pruned_stats = watch.stats("pruned").as_dict()
    blockmax_stats = watch.stats("blockmax").as_dict()
    nocolumnar_stats = watch.stats("nocolumnar").as_dict()
    sharded_stats = watch.stats("sharded").as_dict()
    parallel_stats = watch.stats("parallel").as_dict()
    executor_record = parallel_engine.stats().executor
    parallel_engine.close()  # unlink the published feature-table segment
    batched = watch.stats("batched").as_dict()
    unbatched = watch.stats("unbatched").as_dict()
    cached = watch.stats("cached").as_dict()

    def _speedup(mean_ms: float) -> float:
        return exhaustive["mean_ms"] / mean_ms if mean_ms > 0 else float("inf")

    return {
        "entities": graph.num_entities(),
        "edges": graph.num_edges(),
        "seeds": seed_count,
        "repeats": repeats,
        "top_entities": top_entities,
        "identical": identical,
        "exhaustive_mean_ms": exhaustive["mean_ms"],
        "exhaustive_p95_ms": exhaustive["p95_ms"],
        "accumulator_mean_ms": accumulator["mean_ms"],
        "accumulator_p95_ms": accumulator["p95_ms"],
        "pruned_mean_ms": pruned_stats["mean_ms"],
        "pruned_p95_ms": pruned_stats["p95_ms"],
        "blockmax_mean_ms": blockmax_stats["mean_ms"],
        "blockmax_p95_ms": blockmax_stats["p95_ms"],
        "nocolumnar_mean_ms": nocolumnar_stats["mean_ms"],
        "nocolumnar_p95_ms": nocolumnar_stats["p95_ms"],
        "sharded_mean_ms": sharded_stats["mean_ms"],
        "sharded_p95_ms": sharded_stats["p95_ms"],
        "shards": SHARD_COUNT,
        "parallel_mean_ms": parallel_stats["mean_ms"],
        "parallel_p95_ms": parallel_stats["p95_ms"],
        "workers": PROCESS_WORKERS,
        "cpu_cores": os.cpu_count() or 1,
        # Per-request means of the ×2-duplicated batch workload.
        "batched_mean_ms": batched["mean_ms"] / len(batch_inputs),
        "unbatched_mean_ms": unbatched["mean_ms"] / len(batch_inputs),
        "cached_mean_ms": cached["mean_ms"],
        "cached_p95_ms": cached["p95_ms"],
        "speedup_accumulator": _speedup(accumulator["mean_ms"]),
        "speedup_pruned": _speedup(pruned_stats["mean_ms"]),
        "speedup_blockmax": _speedup(blockmax_stats["mean_ms"]),
        "speedup_nocolumnar": _speedup(nocolumnar_stats["mean_ms"]),
        "speedup_sharded": _speedup(sharded_stats["mean_ms"]),
        "speedup_cached": _speedup(cached["mean_ms"]),
        # Ranking-stage means: the scalar walk vs the columnar kernel on
        # identical candidates/features (see _walk_stage_ab).
        "walk_scalar_ms": walk_scalar["mean_ms"],
        "walk_columnar_ms": walk_columnar["mean_ms"],
        # > 1.0 = the columnar ranker kernel beats the scalar per-holder
        # walk at equal semantics.  Stage-level on purpose: the pipeline
        # around it is arm-independent, so end-to-end means only dilute
        # the comparison (nocolumnar_mean_ms records that view anyway).
        "columnar_ratio": (
            walk_scalar["mean_ms"] / walk_columnar["mean_ms"]
            if walk_columnar["mean_ms"] > 0
            else float("inf")
        ),
        # 1.0 = the 4-shard arm at 1-shard wall-clock; > 1.0 = ahead.
        "sharded_ratio": (
            pruned_stats["mean_ms"] / sharded_stats["mean_ms"]
            if sharded_stats["mean_ms"] > 0
            else float("inf")
        ),
        # Serial pruned over the process arm: > 1.0 = real core
        # parallelism paid off (only expected on multi-core hosts).
        "parallel_ratio": (
            pruned_stats["mean_ms"] / parallel_stats["mean_ms"]
            if parallel_stats["mean_ms"] > 0
            else float("inf")
        ),
        "executor_parallel": None if executor_record is None else executor_record.as_dict(),
        # > 1.0 = one recommend_many call beats the request loop.
        "batch_ratio": (
            unbatched["mean_ms"] / batched["mean_ms"]
            if batched["mean_ms"] > 0
            else float("inf")
        ),
        "pruning": pruned_engine.pruning_info(),
        "pruning_blockmax": blockmax_engine.pruning_info(),
        "pruning_sharded": sharded_engine.pruning_info(),
    }


# --------------------------------------------------------------------- #
# Pytest entry points
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def graphs():
    return {size: _build_graph(size) for size in SIZES}


def test_recommend_accumulator_vs_exhaustive_ab(graphs):
    """E9: the recommendation A/B — identical rankings, lower latency."""
    rows = []
    for size in SIZES:
        row = measure_recommend_ab(graphs[size], repeats=3)
        assert row["identical"], f"pruned/accumulator recommendation diverged at {size} entities"
        rows.append(
            {
                "entities": row["entities"],
                "exhaustive_ms": row["exhaustive_mean_ms"],
                "accumulator_ms": row["accumulator_mean_ms"],
                "pruned_ms": row["pruned_mean_ms"],
                "blockmax_ms": row["blockmax_mean_ms"],
                "nocolumnar_ms": row["nocolumnar_mean_ms"],
                "sharded_ms": row["sharded_mean_ms"],
                "parallel_ms": row["parallel_mean_ms"],
                "batched_ms": row["batched_mean_ms"],
                "cached_ms": row["cached_mean_ms"],
                "speedup": row["speedup_accumulator"],
                "speedup_pruned": row["speedup_pruned"],
                "speedup_blockmax": row["speedup_blockmax"],
                "columnar_ratio": row["columnar_ratio"],
                "sharded_ratio": row["sharded_ratio"],
                "parallel_ratio": row["parallel_ratio"],
                "batch_ratio": row["batch_ratio"],
                "speedup_cached": row["speedup_cached"],
            }
        )
    print_experiment(
        "E9 — recommendation: sharded/batched vs. blockmax vs. maxscore vs. "
        "accumulator vs. exhaustive (4 seeds, top-20)",
        rows,
        notes=(
            "identical rankings; pruned is the maxscore path, sharded the 4-shard "
            "fan-out, batched one recommend_many call, cached the LRU hit path"
        ),
    )
    assert all(row["pruned_ms"] > 0 for row in rows)
    largest = measure_recommend_ab(graphs[SIZES[-1]], repeats=1)
    assert largest["pruning"]["groups_skipped"] > 0  # θ actually bites at scale
    # The shard workers' merged counters: one logical query per request,
    # with the candidate partition summing exactly (audit satellite).
    assert largest["pruning_sharded"]["queries"] == largest["pruning"]["queries"]
    assert largest["pruning_sharded"]["candidates_total"] == largest["pruning"]["candidates_total"]
    # The chunked bounds must actually abandon per-type chunks mid-walk.
    assert largest["pruning_blockmax"]["blocks_skipped"] > 0


@pytest.mark.benchmark(group="recommend-latency")
@pytest.mark.parametrize("size", SIZES)
def test_bench_recommend_by_graph_size(benchmark, graphs, size):
    index = SemanticFeatureIndex.build(graphs[size])
    engine = RecommendationEngine(
        graphs[size], feature_index=index, config=RankingConfig(recommendation_cache_size=0)
    )
    seeds = _seeds(graphs[size], index, 4)
    result = benchmark(engine.recommend_for_seeds, seeds)
    assert result.entities


# --------------------------------------------------------------------- #
# Script entry point (used by the CI bench-smoke job)
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sizes",
        default="200,500,1000,2000",
        help="comma-separated KG sizes (entities) to measure",
    )
    parser.add_argument("--seeds", type=int, default=4, help="seed entities per query")
    parser.add_argument("--repeats", type=int, default=5, help="repeats per mode")
    parser.add_argument("--top-entities", type=int, default=20, help="entities per query")
    parser.add_argument("--output", type=Path, default=None, help="write JSON report here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the largest size reaches this accumulator speedup",
    )
    parser.add_argument(
        "--min-pruned-ratio",
        type=float,
        default=None,
        help=(
            "fail unless accumulator_mean_ms over each pruned arm's mean "
            "(maxscore and blockmax) reaches this at the largest size "
            "(1.0 = pruned at-or-faster than plain accumulator)"
        ),
    )
    parser.add_argument(
        "--min-sharded-ratio",
        type=float,
        default=None,
        help=(
            "fail unless pruned_mean_ms over the 4-shard arm's mean reaches "
            "this at the largest size (1.0 = sharded at-or-faster than the "
            "1-shard serial path)"
        ),
    )
    parser.add_argument(
        "--min-parallel-ratio",
        type=float,
        default=None,
        help=(
            "fail unless pruned_mean_ms over the process-executor arm's "
            "mean reaches this at the largest size (1.0 = process "
            "fan-out at-or-faster than the 1-shard serial path); the "
            "gate is skipped with a warning on single-core hosts, where "
            "worker processes cannot overlap"
        ),
    )
    parser.add_argument(
        "--min-columnar-ratio",
        type=float,
        default=None,
        help=(
            "fail unless the ranking-stage walk_scalar/walk_columnar ratio "
            "reaches this at the largest size (1.0 = the vectorized ranker "
            "kernel at-or-faster than the scalar per-holder walk; the "
            "kernel's setup cost only amortises on large candidate pools, "
            "so gate this on at-scale legs, not tiny smoke KGs)"
        ),
    )
    parser.add_argument(
        "--min-batch-ratio",
        type=float,
        default=None,
        help=(
            "fail unless the unbatched/batched wall-clock ratio of the "
            "duplicated workload reaches this at the largest size"
        ),
    )
    args = parser.parse_args(argv)

    sizes = sorted({int(token) for token in args.sizes.split(",") if token.strip()})
    if not sizes:
        parser.error("--sizes must name at least one KG size")
    rows = []
    for size in sizes:
        graph = _build_graph(size)
        row = measure_recommend_ab(
            graph,
            repeats=args.repeats,
            seed_count=args.seeds,
            top_entities=args.top_entities,
        )
        rows.append(row)
        print(
            f"entities={row['entities']:>6}  exhaustive={row['exhaustive_mean_ms']:8.3f}ms  "
            f"accumulator={row['accumulator_mean_ms']:8.3f}ms  pruned={row['pruned_mean_ms']:8.3f}ms  "
            f"blockmax={row['blockmax_mean_ms']:8.3f}ms  "
            f"nocolumnar={row['nocolumnar_mean_ms']:8.3f}ms  "
            f"sharded={row['sharded_mean_ms']:8.3f}ms  "
            f"parallel={row['parallel_mean_ms']:8.3f}ms  "
            f"batched={row['batched_mean_ms']:8.3f}ms  cached={row['cached_mean_ms']:8.3f}ms  "
            f"speedup={row['speedup_accumulator']:6.2f}x  pruned={row['speedup_pruned']:6.2f}x  "
            f"blockmax={row['speedup_blockmax']:6.2f}x  "
            f"columnar_ratio={row['columnar_ratio']:5.2f}  "
            f"shard_ratio={row['sharded_ratio']:5.2f}  "
            f"parallel_ratio={row['parallel_ratio']:5.2f}  "
            f"batch_ratio={row['batch_ratio']:5.2f}  cached={row['speedup_cached']:8.2f}x  "
            f"identical={row['identical']}"
        )

    report = {
        "bench": "recommend_latency",
        "description": (
            "recommendation latency (recommend_for_seeds): blockmax vs "
            "maxscore-pruned vs type-grouped accumulator vs exhaustive vs "
            "LRU-cached"
        ),
        "config": {
            "sizes": sizes,
            "seeds": args.seeds,
            "repeats": args.repeats,
            "top_entities": args.top_entities,
            "kg_seed": 42,
            "kg_kwargs": KG_KWARGS,
        },
        "rows": rows,
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if any(not row["identical"] for row in rows):
        print("FAIL: pruned/accumulator rankings diverged from exhaustive scoring", file=sys.stderr)
        return 1
    largest = rows[-1]
    if args.min_speedup is not None and largest["speedup_accumulator"] < args.min_speedup:
        print(
            f"FAIL: speedup {largest['speedup_accumulator']:.2f}x below "
            f"required {args.min_speedup:.2f}x at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_pruned_ratio is not None:
        for arm in ("pruned", "blockmax"):
            mean_ms = largest[f"{arm}_mean_ms"]
            ratio = largest["accumulator_mean_ms"] / mean_ms if mean_ms > 0 else float("inf")
            if ratio < args.min_pruned_ratio:
                print(
                    f"FAIL: {arm}/accumulator ratio {ratio:.2f} below required "
                    f"{args.min_pruned_ratio:.2f} at {largest['entities']} entities",
                    file=sys.stderr,
                )
                return 1
    if args.min_sharded_ratio is not None and largest["sharded_ratio"] < args.min_sharded_ratio:
        print(
            f"FAIL: sharded ratio {largest['sharded_ratio']:.2f} below required "
            f"{args.min_sharded_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_parallel_ratio is not None:
        if largest["cpu_cores"] <= 1:
            print(
                f"WARN: skipping --min-parallel-ratio {args.min_parallel_ratio:.2f} gate "
                f"on a single-core host (parallel_ratio={largest['parallel_ratio']:.2f})",
                file=sys.stderr,
            )
        elif largest["parallel_ratio"] < args.min_parallel_ratio:
            print(
                f"FAIL: parallel ratio {largest['parallel_ratio']:.2f} below required "
                f"{args.min_parallel_ratio:.2f} at {largest['entities']} entities "
                f"({largest['cpu_cores']} cores)",
                file=sys.stderr,
            )
            return 1
    if args.min_columnar_ratio is not None and largest["columnar_ratio"] < args.min_columnar_ratio:
        print(
            f"FAIL: columnar ratio {largest['columnar_ratio']:.2f} below required "
            f"{args.min_columnar_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    if args.min_batch_ratio is not None and largest["batch_ratio"] < args.min_batch_ratio:
        print(
            f"FAIL: batch ratio {largest['batch_ratio']:.2f} below required "
            f"{args.min_batch_ratio:.2f} at {largest['entities']} entities",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
